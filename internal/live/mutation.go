// Package live makes the system writable end to end: it wraps a PGD, its
// entity graph, and an immutable on-disk path index in a single-writer /
// many-reader database that accepts linkage-evidence mutations at serving
// time. Every mutation batch is appended to a CRC-protected write-ahead log,
// folded into the entity graph incrementally (entity.ApplyDelta recomputes
// only the identity components the batch touches), and surfaced to queries
// through an in-memory delta overlay path index merged with the on-disk
// base (View implements pathindex.Reader). A background compactor folds the
// accumulated overlay into a fresh on-disk generation and atomically
// republishes, so queries keep serving throughout — the paper's offline
// index (Section 5.1) becomes the immutable base layer of an LSM-style
// read-write design.
package live

import (
	"bytes"
	"fmt"

	"repro/internal/prob"
	"repro/internal/refgraph"
	"repro/internal/storage/binio"
)

// Mutation op names (the JSON "op" field of /ingest and the WAL tag).
const (
	// OpAddRef appends a reference with a label distribution.
	OpAddRef = "add-ref"
	// OpAddEdge adds (or overwrites) a reference edge's existence
	// distribution.
	OpAddEdge = "add-edge"
	// OpSetLinkage records linkage evidence: it sets the merge probability
	// of the reference set with exactly the given members, creating the set
	// when it is new.
	OpSetLinkage = "set-linkage"
)

// LabelP is one entry of an add-ref label distribution, by label name.
type LabelP struct {
	Label string  `json:"label"`
	P     float64 `json:"p"`
}

// Mutation is one write against the live PGD. Exactly the fields of its op
// are consulted:
//
//	{"op":"add-ref","labels":[{"label":"a","p":0.7},{"label":"r","p":0.3}]}
//	{"op":"add-edge","a":3,"b":7,"p":0.8}
//	{"op":"set-linkage","members":[3,4],"p":0.9}
type Mutation struct {
	Op      string           `json:"op"`
	Labels  []LabelP         `json:"labels,omitempty"`
	A       refgraph.RefID   `json:"a,omitempty"`
	B       refgraph.RefID   `json:"b,omitempty"`
	P       float64          `json:"p,omitempty"`
	CPT     []float64        `json:"cpt,omitempty"`
	Members []refgraph.RefID `json:"members,omitempty"`
}

// WAL payload tags.
const (
	walAddRef     = 1
	walAddEdge    = 2
	walSetLinkage = 3
)

// encode serializes the mutation as a WAL record payload (label names are
// stored as strings so records stay meaningful across generations).
func (m *Mutation) encode() ([]byte, error) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	switch m.Op {
	case OpAddRef:
		w.U8(walAddRef)
		w.U32(uint32(len(m.Labels)))
		for _, lp := range m.Labels {
			w.Str(lp.Label)
			w.F64(lp.P)
		}
	case OpAddEdge:
		w.U8(walAddEdge)
		w.U32(uint32(m.A))
		w.U32(uint32(m.B))
		w.F64(m.P)
		w.U32(uint32(len(m.CPT)))
		for _, p := range m.CPT {
			w.F64(p)
		}
	case OpSetLinkage:
		w.U8(walSetLinkage)
		w.U32(uint32(len(m.Members)))
		for _, r := range m.Members {
			w.U32(uint32(r))
		}
		w.F64(m.P)
	default:
		return nil, fmt.Errorf("live: unknown mutation op %q", m.Op)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeMutation parses one WAL record payload.
func decodeMutation(payload []byte) (Mutation, error) {
	r := binio.NewReader(bytes.NewReader(payload))
	var m Mutation
	switch tag := r.U8(); tag {
	case walAddRef:
		m.Op = OpAddRef
		n := r.U32()
		if n > 1<<16 {
			return m, fmt.Errorf("live: wal add-ref with %d labels", n)
		}
		m.Labels = make([]LabelP, n)
		for i := range m.Labels {
			m.Labels[i].Label = r.Str()
			m.Labels[i].P = r.F64()
		}
	case walAddEdge:
		m.Op = OpAddEdge
		m.A = refgraph.RefID(r.U32())
		m.B = refgraph.RefID(r.U32())
		m.P = r.F64()
		n := r.U32()
		if n > 1<<16 {
			return m, fmt.Errorf("live: wal add-edge with %d CPT entries", n)
		}
		if n > 0 {
			m.CPT = make([]float64, n)
			for i := range m.CPT {
				m.CPT[i] = r.F64()
			}
		}
	case walSetLinkage:
		m.Op = OpSetLinkage
		n := r.U32()
		if n > 1<<16 {
			return m, fmt.Errorf("live: wal set-linkage with %d members", n)
		}
		m.Members = make([]refgraph.RefID, n)
		for i := range m.Members {
			m.Members[i] = refgraph.RefID(r.U32())
		}
		m.P = r.F64()
	default:
		return m, fmt.Errorf("live: unknown wal record tag %d", tag)
	}
	if err := r.Err(); err != nil {
		return m, fmt.Errorf("live: wal record: %w", err)
	}
	return m, nil
}

// validate checks a mutation against the PGD it will be applied to.
// pendingRefs counts references added earlier in the same batch, so
// intra-batch forward references resolve.
func (m *Mutation) validate(d *refgraph.PGD, pendingRefs int) error {
	numRefs := d.NumRefs() + pendingRefs
	checkRef := func(r refgraph.RefID) error {
		if r < 0 || int(r) >= numRefs {
			return fmt.Errorf("live: unknown reference %d", r)
		}
		return nil
	}
	switch m.Op {
	case OpAddRef:
		if len(m.Labels) == 0 {
			return fmt.Errorf("live: add-ref needs a label distribution")
		}
		for _, lp := range m.Labels {
			if d.Alphabet().ID(lp.Label) == prob.NoLabel {
				return fmt.Errorf("live: unknown label %q", lp.Label)
			}
		}
		if _, err := m.dist(d.Alphabet()); err != nil {
			return err
		}
	case OpAddEdge:
		if err := checkRef(m.A); err != nil {
			return err
		}
		if err := checkRef(m.B); err != nil {
			return err
		}
		if m.A == m.B {
			return fmt.Errorf("live: self edge on reference %d", m.A)
		}
		if m.P < 0 || m.P > 1 {
			return fmt.Errorf("live: edge probability %v out of range", m.P)
		}
		if n := d.Alphabet().Len(); len(m.CPT) != 0 && len(m.CPT) != n*n {
			return fmt.Errorf("live: CPT has %d entries, want %d", len(m.CPT), n*n)
		}
	case OpSetLinkage:
		if m.P < 0 || m.P > 1 {
			return fmt.Errorf("live: linkage probability %v out of range", m.P)
		}
		seen := make(map[refgraph.RefID]bool, len(m.Members))
		for _, r := range m.Members {
			if err := checkRef(r); err != nil {
				return err
			}
			seen[r] = true
		}
		if len(seen) < 2 {
			return fmt.Errorf("live: set-linkage needs at least 2 distinct members, got %d", len(seen))
		}
	default:
		return fmt.Errorf("live: unknown mutation op %q", m.Op)
	}
	return nil
}

// dist resolves the add-ref label distribution against the alphabet.
func (m *Mutation) dist(a *prob.Alphabet) (prob.Dist, error) {
	entries := make([]prob.LabelProb, len(m.Labels))
	for i, lp := range m.Labels {
		id := a.ID(lp.Label)
		if id == prob.NoLabel {
			return prob.Dist{}, fmt.Errorf("live: unknown label %q", lp.Label)
		}
		entries[i] = prob.LabelProb{Label: id, P: lp.P}
	}
	d, err := prob.NewDist(entries...)
	if err != nil {
		return prob.Dist{}, fmt.Errorf("live: add-ref distribution: %w", err)
	}
	return d, nil
}
