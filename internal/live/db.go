package live

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/entity"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

// ErrClosed reports an operation on a closed database — retryable only by
// reopening; the server maps it to 503.
var ErrClosed = errors.New("live: database closed")

// ErrInvalidMutation marks a batch rejected because of the mutations
// themselves (unknown reference, bad probability, linkage chain exceeding
// the component budget, …) — the client's fault, mapped to 400. Errors not
// wrapping it (WAL I/O, build failures) are server-side and retryable.
var ErrInvalidMutation = errors.New("live: invalid mutation")

// Publisher receives freshly published views. The server implements it:
// Publish swaps the served index atomically (and invalidates the result
// cache by index identity); DrainObsolete blocks until every request that
// pinned a previously published reader has finished, after which the
// compactor may close the retired base index.
type Publisher interface {
	Publish(r pathindex.Reader)
	DrainObsolete()
}

// Options configures a live database.
type Options struct {
	// Index parameterizes base index builds (MaxLen, Beta, Gamma, Workers;
	// Dir is managed per generation by the DB).
	Index pathindex.Options
	// Build parameterizes entity graph construction.
	Build entity.BuildOptions
	// CompactEvery triggers a background compaction after this many
	// mutations on top of the current base (0 = 512, negative disables).
	CompactEvery int
	// CompactDirtyFrac triggers a background compaction once this fraction
	// of entities is dirty (0 = 0.25, negative disables).
	CompactDirtyFrac float64
	// Publisher, when set, receives every published view.
	Publisher Publisher
	// Logf, when set, receives compaction progress and failure lines.
	Logf func(format string, args ...any)
}

func (o *Options) normalize() {
	if o.CompactEvery == 0 {
		o.CompactEvery = 512
	}
	if o.CompactDirtyFrac == 0 {
		o.CompactDirtyFrac = 0.25
	}
}

// ApplyResult summarizes one accepted mutation batch.
type ApplyResult struct {
	// Applied is the number of mutations in the batch.
	Applied int `json:"applied"`
	// Refs lists the reference ids assigned to the batch's add-ref
	// mutations, in order.
	Refs []refgraph.RefID `json:"refs,omitempty"`
	// Sets lists the set ids created or updated by the batch's set-linkage
	// mutations, in order.
	Sets []refgraph.SetID `json:"sets,omitempty"`
	// Generation is the base generation the published view rides on.
	Generation uint64 `json:"generation"`
	// Mutations counts all mutations since that generation was built.
	Mutations uint64 `json:"mutations"`
	// DirtyEntities is the current overlay's dirty entity count.
	DirtyEntities int `json:"dirty_entities"`
	// Compacting reports that a background compaction is running.
	Compacting bool `json:"compacting"`
}

// Status is a point-in-time summary of the database. All fields are
// captured under one lock, so they are mutually consistent: Generation and
// Mutations describe the same view that Compacting/Compactions were read
// with.
type Status struct {
	Generation    uint64 `json:"generation"`
	Mutations     uint64 `json:"mutations"`
	DirtyEntities int    `json:"dirty_entities"`
	Entities      int    `json:"entities"`
	Compacting    bool   `json:"compacting"`
	Compactions   uint64 `json:"compactions"`
	// LastCompactionNanos is the wall clock of the most recent successful
	// compaction (snapshot → fresh generation installed); zero before the
	// first one. TotalCompactionNanos accumulates across all of them.
	LastCompactionNanos  int64 `json:"last_compaction_ns,omitempty"`
	TotalCompactionNanos int64 `json:"total_compaction_ns,omitempty"`
}

// DB is a live, writable probabilistic entity graph database: a mutable PGD
// plus serving state, with single-writer mutation batches (Apply) and
// wait-free concurrent reads (View). See the package comment for the layer
// map.
type DB struct {
	dir string
	opt Options

	view atomic.Pointer[View]

	lock *os.File // exclusive directory lock, held until Close

	mu          sync.Mutex
	pgd         *refgraph.PGD
	baseIx      *pathindex.Index
	gen         uint64
	wal         *wal
	muts        uint64 // mutations since the current base generation
	closed      bool
	compacting  bool
	compactions uint64
	// Wall clock of the most recent / all successful compactions, for the
	// serving tier's metrics export.
	lastCompactNanos  int64
	totalCompactNanos int64
	// Mutations applied while a compaction snapshot is building, replayed
	// onto the fresh base at install time.
	sinceSnapMuts  []Mutation
	sinceSnapDelta entity.Delta
	// Retired base indexes that may still be pinned by in-flight queries
	// (no Publisher to drain them); closed on Close.
	obsolete []*pathindex.Index

	wg sync.WaitGroup // background compactions
}

const manifestName = "MANIFEST.json"

type manifest struct {
	Generation uint64 `json:"generation"`
}

func (db *DB) genDir(gen uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("gen-%06d", gen))
}

func (db *DB) walPath(gen uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("wal-%06d.log", gen))
}

const snapName = "pgd.snap"

// lockDir takes an exclusive advisory lock on the database directory so two
// processes cannot interleave appends into one WAL (which would corrupt it
// past CRC recovery). Released by closing the returned file.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: %s is already served by another process: %w", dir, err)
	}
	return f, nil
}

// writeManifest flips the current-generation pointer crash-safely: the tmp
// file is fsynced before the rename and the directory after it, so a power
// loss leaves either the old or the new manifest — never a torn or
// unpersisted one — and the WAL acknowledged under the named generation
// stays reachable.
func writeManifest(dir string, gen uint64) error {
	b, err := json.Marshal(manifest{Generation: gen})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func writeSnapshot(path string, d *refgraph.PGD) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Create initializes a live database directory from a PGD: generation 1 is
// built (snapshot + entity graph + path index) and an empty mutation log is
// created. The PGD is cloned; the caller's copy stays independent.
func Create(ctx context.Context, dir string, d *refgraph.PGD, opt Options) (*DB, error) {
	opt.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("live: %s already holds a database", dir)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	db := &DB{dir: dir, opt: opt, gen: 1, lock: lock}
	pgd := d.Clone()
	genDir := db.genDir(1)
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if err := writeSnapshot(filepath.Join(genDir, snapName), pgd); err != nil {
		return nil, fmt.Errorf("live: snapshot: %w", err)
	}
	g, err := entity.Build(pgd, opt.Build)
	if err != nil {
		return nil, err
	}
	ixOpt := opt.Index
	ixOpt.Dir = genDir
	ix, err := pathindex.Build(ctx, g, ixOpt)
	if err != nil {
		return nil, err
	}
	w, err := createWAL(db.walPath(1))
	if err != nil {
		ix.Close()
		return nil, err
	}
	if err := writeManifest(dir, 1); err != nil {
		w.Close()
		ix.Close()
		return nil, fmt.Errorf("live: manifest: %w", err)
	}
	db.pgd, db.baseIx, db.wal = pgd, ix, w
	db.view.Store(&View{base: ix, g: g, ctx: ix.Context(), gen: 1})
	db.publishLocked()
	ok = true
	return db, nil
}

// Open attaches to an existing live database directory: the current
// generation's snapshot and index are loaded and the mutation log is
// replayed on top (recovering whatever a previous process had acknowledged
// but not yet compacted).
func Open(dir string, opt Options) (*DB, error) {
	opt.normalize()
	// The lock comes before the manifest read: during a process handoff the
	// outgoing server may still flip generations, and a pointer read before
	// the lock is won could name a generation that no longer exists.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("live: open %s: %w (not a live database? use Create)", dir, err)
	}
	var man manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("live: corrupt manifest: %w", err)
	}
	db := &DB{dir: dir, opt: opt, gen: man.Generation, lock: lock}
	genDir := db.genDir(man.Generation)
	sf, err := os.Open(filepath.Join(genDir, snapName))
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	pgd, err := refgraph.Load(sf)
	sf.Close()
	if err != nil {
		return nil, err
	}
	g, err := entity.Build(pgd, opt.Build)
	if err != nil {
		return nil, err
	}
	ix, err := pathindex.Open(genDir, g)
	if err != nil {
		return nil, err
	}
	// Future generations inherit the database's original index parameters:
	// silently compacting with different flags would change which queries
	// the index can answer without the on-demand fallback.
	if o := opt.Index; (o.MaxLen != 0 && o.MaxLen != ix.MaxLen()) ||
		(o.Beta != 0 && o.Beta != ix.Beta()) || (o.Gamma != 0 && o.Gamma != ix.Gamma()) {
		if opt.Logf != nil {
			opt.Logf("ignoring index parameters L=%d β=%v γ=%v: database was built with L=%d β=%v γ=%v",
				o.MaxLen, o.Beta, o.Gamma, ix.MaxLen(), ix.Beta(), ix.Gamma())
		}
	}
	db.opt.Index.MaxLen, db.opt.Index.Beta, db.opt.Index.Gamma = ix.MaxLen(), ix.Beta(), ix.Gamma()
	w, muts, err := openWAL(db.walPath(man.Generation))
	if err != nil {
		ix.Close()
		return nil, err
	}
	db.pgd, db.baseIx, db.wal = pgd, ix, w
	db.view.Store(&View{base: ix, g: g, ctx: ix.Context(), gen: man.Generation})
	if len(muts) > 0 {
		db.mu.Lock()
		_, aerr := db.applyLocked(muts, false)
		db.mu.Unlock()
		if aerr != nil {
			w.Close()
			ix.Close()
			return nil, fmt.Errorf("live: wal replay: %w", aerr)
		}
	}
	db.publishLocked()
	ok = true
	return db, nil
}

// View returns the current immutable view; it implements pathindex.Reader
// and is internally consistent for as long as the caller holds it. Its
// on-disk base index stays open until the database is closed — except when
// a Publisher is attached: then a compaction closes retired generations as
// soon as the publisher's DrainObsolete returns, so queries must go through
// the publisher's request pinning (the server) rather than a directly held
// View. Without a Publisher, direct Views stay fully usable until Close.
func (db *DB) View() *View { return db.view.Load() }

// SetPublisher installs (or replaces) the publisher after construction —
// the server is usually built around the DB's first view, then registered
// here. The current view is published immediately.
func (db *DB) SetPublisher(p Publisher) {
	db.mu.Lock()
	db.opt.Publisher = p
	db.publishLocked()
	db.mu.Unlock()
}

// Graph returns the current entity graph (shorthand for View().Graph()).
func (db *DB) Graph() *entity.Graph { return db.View().Graph() }

// PGDSnapshot returns an independent copy of the current PGD — the exact
// reference-level state every applied mutation has landed in. Useful for
// offline rebuilds and tests.
func (db *DB) PGDSnapshot() *refgraph.PGD {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pgd.Clone()
}

// Status reports generation, overlay, and compaction counters. The view is
// read under db.mu — view installs happen under the same lock — so the
// per-view fields (Generation, Mutations) and the compactor fields
// (Compacting, Compactions) describe one moment: snapshotting the view
// before taking the lock could pair a pre-compaction generation with a
// post-compaction counter in a single report.
func (db *DB) Status() Status {
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.view.Load()
	return Status{
		Generation:           v.gen,
		Mutations:            v.muts,
		DirtyEntities:        v.DirtyEntities(),
		Entities:             v.g.NumNodes(),
		Compacting:           db.compacting,
		Compactions:          db.compactions,
		LastCompactionNanos:  db.lastCompactNanos,
		TotalCompactionNanos: db.totalCompactNanos,
	}
}

// Apply validates and applies one mutation batch atomically: either every
// mutation lands (logged to the WAL, folded into the entity graph and
// overlay, and published as a new view) or none does. Apply serializes
// writers; readers are never blocked.
func (db *DB) Apply(ms []Mutation) (ApplyResult, error) {
	if len(ms) == 0 {
		return ApplyResult{}, fmt.Errorf("%w: empty batch", ErrInvalidMutation)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ApplyResult{}, ErrClosed
	}
	res, err := db.applyLocked(ms, true)
	if err != nil {
		return res, err
	}
	db.maybeCompactLocked()
	res.Compacting = db.compacting
	return res, nil
}

// applyLocked is Apply without locking and auto-compaction; logToWAL is
// false during WAL replay (the records are already on disk).
func (db *DB) applyLocked(ms []Mutation, logToWAL bool) (ApplyResult, error) {
	var res ApplyResult
	invalid := func(i int, err error) error {
		return fmt.Errorf("%w %d: %v", ErrInvalidMutation, i, err)
	}
	pendingRefs := 0
	for i := range ms {
		if err := ms[i].validate(db.pgd, pendingRefs); err != nil {
			return res, invalid(i, err)
		}
		if ms[i].Op == OpAddRef {
			pendingRefs++
		}
	}

	// Mutate the PGD in place, collecting an undo log: a failure at any
	// later point (delta application, WAL write) rolls everything back, and
	// unlike a defensive whole-PGD clone the cost is O(batch), not
	// O(database). The PGD is only ever touched under db.mu, so readers
	// never observe the intermediate state.
	d := db.pgd
	refs0, sets0 := d.NumRefs(), d.NumSets()
	type edgeUndo struct {
		k       refgraph.EdgeKey
		e       refgraph.EdgeDist
		present bool
	}
	var edgeUndos []edgeUndo
	edgeSeen := make(map[refgraph.EdgeKey]bool)
	type probUndo struct {
		id refgraph.SetID
		p  float64
	}
	var probUndos []probUndo
	rollback := func() {
		for i := len(probUndos) - 1; i >= 0; i-- {
			d.SetSetProb(probUndos[i].id, probUndos[i].p)
		}
		for i := len(edgeUndos) - 1; i >= 0; i-- {
			d.RestoreEdge(edgeUndos[i].k, edgeUndos[i].e, edgeUndos[i].present)
		}
		d.TruncateSets(sets0)
		d.TruncateRefs(refs0)
	}

	var delta entity.Delta
	newSet := make(map[refgraph.SetID]bool)
	touchedSet := make(map[refgraph.SetID]bool)
	for i := range ms {
		m := &ms[i]
		var err error
		switch m.Op {
		case OpAddRef:
			var dist prob.Dist
			if dist, err = m.dist(d.Alphabet()); err == nil {
				id := d.AddReference(dist)
				delta.NewRefs = append(delta.NewRefs, id)
				res.Refs = append(res.Refs, id)
			}
		case OpAddEdge:
			k := refgraph.MakeEdgeKey(m.A, m.B)
			if !edgeSeen[k] {
				edgeSeen[k] = true
				old, present := d.Edge(m.A, m.B)
				edgeUndos = append(edgeUndos, edgeUndo{k: k, e: old, present: present})
			}
			e := refgraph.EdgeDist{P: m.P}
			if len(m.CPT) > 0 {
				e.CPT = m.CPT
			}
			if err = d.AddEdge(m.A, m.B, e); err == nil {
				delta.Edges = append(delta.Edges, k)
			}
		case OpSetLinkage:
			if sid, ok := d.FindSet(m.Members); ok {
				if !newSet[sid] && !touchedSet[sid] {
					probUndos = append(probUndos, probUndo{id: sid, p: d.Set(sid).P})
					delta.SetProbs = append(delta.SetProbs, sid)
					touchedSet[sid] = true
				}
				if err = d.SetSetProb(sid, m.P); err == nil {
					res.Sets = append(res.Sets, sid)
				}
			} else {
				var sid refgraph.SetID
				if sid, err = d.AddReferenceSet(m.Members, m.P); err == nil {
					delta.NewSets = append(delta.NewSets, sid)
					newSet[sid] = true
					res.Sets = append(res.Sets, sid)
				}
			}
		}
		if err != nil {
			rollback()
			res.Refs, res.Sets = nil, nil
			return res, invalid(i, err)
		}
	}

	cur := db.view.Load()
	ng, dirtyNew, err := entity.ApplyDelta(cur.g, d, delta, db.opt.Build)
	if err != nil {
		rollback()
		res.Refs, res.Sets = nil, nil
		// The graph delta only fails on what the mutations asked for (e.g.
		// a linkage chain exceeding the identity-component budget).
		return res, fmt.Errorf("%w: %v", ErrInvalidMutation, err)
	}
	if logToWAL {
		if err := db.wal.append(ms); err != nil {
			rollback()
			res.Refs, res.Sets = nil, nil
			return res, err
		}
	}

	// Install: cumulative dirty set, fresh overlay, patched context tables.
	dirty := make([]bool, ng.NumNodes())
	copy(dirty, cur.dirty)
	for _, e := range dirtyNew {
		dirty[e] = true
	}
	ov := buildOverlay(ng, dirty, db.baseIx.Beta(), db.baseIx.MaxLen())
	ctxTables := cur.ctx.Patch(ng, dirtyNew)
	db.muts += uint64(len(ms))
	view := &View{
		base: db.baseIx, g: ng, ctx: ctxTables, ov: ov, dirty: dirty,
		gen: db.gen, muts: db.muts,
	}
	db.view.Store(view)
	db.publishLocked()
	if db.compacting {
		db.sinceSnapMuts = append(db.sinceSnapMuts, ms...)
		db.sinceSnapDelta = db.sinceSnapDelta.Merge(delta)
	}
	res.Applied = len(ms)
	res.Generation = db.gen
	res.Mutations = db.muts
	res.DirtyEntities = view.DirtyEntities()
	return res, nil
}

// publishLocked hands the current view to the publisher, under db.mu so
// publish order matches install order.
func (db *DB) publishLocked() {
	if db.opt.Publisher != nil {
		db.opt.Publisher.Publish(db.view.Load())
	}
}

// maybeCompactLocked starts a background compaction once the overlay
// crosses a threshold.
func (db *DB) maybeCompactLocked() {
	if db.compacting || db.closed {
		return
	}
	trigger := db.opt.CompactEvery > 0 && db.muts >= uint64(db.opt.CompactEvery)
	if !trigger && db.opt.CompactDirtyFrac > 0 {
		v := db.view.Load()
		if n := v.g.NumNodes(); n > 0 {
			trigger = float64(v.DirtyEntities()) >= db.opt.CompactDirtyFrac*float64(n) && v.DirtyEntities() > 0
		}
	}
	if !trigger {
		return
	}
	clone, gen := db.startCompactionLocked()
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		if err := db.compactFrom(context.Background(), clone, gen); err != nil {
			db.logf("compaction of gen %d failed: %v", gen, err)
		}
	}()
}

// startCompactionLocked snapshots the PGD and reserves the next generation.
func (db *DB) startCompactionLocked() (*refgraph.PGD, uint64) {
	db.compacting = true
	db.sinceSnapMuts = nil
	db.sinceSnapDelta = entity.Delta{}
	return db.pgd.Clone(), db.gen + 1
}

// Compact synchronously folds the overlay into a fresh on-disk generation
// and publishes it. Returns an error if a background compaction is already
// running.
func (db *DB) Compact(ctx context.Context) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.compacting {
		db.mu.Unlock()
		return errors.New("live: compaction already running")
	}
	clone, gen := db.startCompactionLocked()
	// Registered under db.mu (like the background path) so Close's wg.Wait
	// cannot return — and release the directory lock — while this
	// compaction is still writing generation files.
	db.wg.Add(1)
	db.mu.Unlock()
	defer db.wg.Done()
	return db.compactFrom(ctx, clone, gen)
}

// compactFrom builds generation gen from the snapshot clone (offline, no
// locks held), then atomically installs it: pending mutations applied since
// the snapshot are replayed onto the fresh base through the same delta
// machinery, the WAL is rotated to carry only those, and the manifest flips.
// Queries keep serving the old view throughout and switch atomically.
func (db *DB) compactFrom(ctx context.Context, clone *refgraph.PGD, gen uint64) (err error) {
	started := time.Now()
	genDir := db.genDir(gen)
	defer func() {
		if err != nil {
			db.mu.Lock()
			db.compacting = false
			db.sinceSnapMuts, db.sinceSnapDelta = nil, entity.Delta{}
			db.mu.Unlock()
			os.RemoveAll(genDir)
			os.Remove(db.walPath(gen))
		}
	}()

	db.logf("compacting into generation %d", gen)
	if err = os.MkdirAll(genDir, 0o755); err != nil {
		return fmt.Errorf("live: %w", err)
	}
	if err = writeSnapshot(filepath.Join(genDir, snapName), clone); err != nil {
		return fmt.Errorf("live: snapshot: %w", err)
	}
	g2, err := entity.Build(clone, db.opt.Build)
	if err != nil {
		return err
	}
	ixOpt := db.opt.Index
	ixOpt.Dir = genDir
	ix2, err := pathindex.Build(ctx, g2, ixOpt)
	if err != nil {
		return err
	}

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		ix2.Close()
		return ErrClosed
	}
	pending := db.sinceSnapMuts
	pendDelta := db.sinceSnapDelta

	newGraph := g2
	ctxTables := ix2.Context()
	var (
		dirty []bool
		ov    *overlay
	)
	if !pendDelta.Empty() {
		ng, dirtyNew, aerr := entity.ApplyDelta(g2, db.pgd, pendDelta, db.opt.Build)
		if aerr != nil {
			db.mu.Unlock()
			ix2.Close()
			return aerr
		}
		newGraph = ng
		dirty = make([]bool, ng.NumNodes())
		for _, e := range dirtyNew {
			dirty[e] = true
		}
		ov = buildOverlay(newGraph, dirty, ix2.Beta(), ix2.MaxLen())
		ctxTables = ix2.Context().Patch(newGraph, dirtyNew)
	}
	newWAL, werr := writeWAL(db.walPath(gen), pending)
	if werr != nil {
		db.mu.Unlock()
		ix2.Close()
		return werr
	}
	if merr := writeManifest(db.dir, gen); merr != nil {
		db.mu.Unlock()
		newWAL.Close()
		ix2.Close()
		return fmt.Errorf("live: manifest: %w", merr)
	}
	oldWAL, oldGenDir, oldBase := db.wal, db.genDir(db.gen), db.baseIx
	db.wal, db.gen, db.baseIx = newWAL, gen, ix2
	db.muts = uint64(len(pending))
	view := &View{
		base: ix2, g: newGraph, ctx: ctxTables, ov: ov, dirty: dirty,
		gen: gen, muts: db.muts,
	}
	db.view.Store(view)
	db.publishLocked()
	db.compacting = false
	db.compactions++
	db.lastCompactNanos = time.Since(started).Nanoseconds()
	db.totalCompactNanos += db.lastCompactNanos
	db.sinceSnapMuts, db.sinceSnapDelta = nil, entity.Delta{}
	pub := db.opt.Publisher
	if pub == nil {
		// Nobody can tell us when in-flight queries on the old base finish;
		// keep it open until Close.
		db.obsolete = append(db.obsolete, oldBase)
	}
	db.mu.Unlock()

	oldWAL.Close()
	os.Remove(oldWAL.path)
	if pub != nil {
		pub.DrainObsolete()
		oldBase.Close()
	}
	os.RemoveAll(oldGenDir)
	db.logf("generation %d live (%d pending mutations carried over)", gen, len(pending))
	return nil
}

// Close flushes the mutation log and releases every on-disk resource. It
// waits for a running background compaction to finish; new Apply calls fail
// immediately.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	db.wg.Wait()

	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	if err := db.wal.Close(); err != nil && first == nil {
		first = err
	}
	if err := db.baseIx.Close(); err != nil && first == nil {
		first = err
	}
	for _, ix := range db.obsolete {
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	db.obsolete = nil
	if err := db.lock.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (db *DB) logf(format string, args ...any) {
	if db.opt.Logf != nil {
		db.opt.Logf(format, args...)
	}
}
