package live

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/join"
)

// TestConcurrentIngestAndParallelMatch is the parallel-join variant of the
// ingest stress: every reader streams with Parallelism 4 — so the morsel
// workers, the fan-in, and the per-view overlay index all run concurrently
// with /ingest-style mutations and background compaction publishes. Run
// under -race this is the data-race gate for the parallel match path over
// live views.
func TestConcurrentIngestAndParallelMatch(t *testing.T) {
	d := basePGD(t, 13)
	opt := testOptions()
	opt.CompactEvery = 6 // force compactions mid-stress
	db := createDB(t, d, opt)

	q, err := gen.RandomQuery(rand.New(rand.NewSource(4)), 4, 3, 3)
	if err != nil {
		t.Fatalf("RandomQuery: %v", err)
	}
	var (
		stop    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	readers := 3
	if testing.Short() {
		readers = 2
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Each iteration pins one immutable view and fans the join
				// out over 4 morsel workers inside it.
				_, err := core.MatchStream(context.Background(), db.View(), q,
					core.Options{Alpha: 0.1, Parallelism: 4},
					func(join.Match) bool { return true })
				if err != nil {
					errs <- err
					return
				}
				queries.Add(1)
			}
		}()
	}

	rng := rand.New(rand.NewSource(29))
	writes := 40
	if testing.Short() {
		writes = 15
	}
	for i := 0; i < writes; i++ {
		db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())})
	}
	// Keep the readers hammering until a background compaction has actually
	// published — the generation swap under parallel readers is exactly the
	// moment the test is about.
	for deadline := time.Now().Add(30 * time.Second); db.Status().Compactions == 0 || db.Status().Compacting; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("parallel query failed during ingest: %v", err)
	default:
	}
	if queries.Load() == 0 {
		t.Fatal("no parallel query completed during the stress run")
	}
	t.Logf("served %d parallel queries across %d writes and %d compactions",
		queries.Load(), writes, db.Status().Compactions)
}
