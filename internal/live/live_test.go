package live

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/join"
	"repro/internal/pathindex"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

const (
	testMaxLen = 2
	testBeta   = 0.05
	testGamma  = 0.1
)

func testOptions() Options {
	return Options{
		Index:        pathindex.Options{MaxLen: testMaxLen, Beta: testBeta, Gamma: testGamma},
		CompactEvery: -1, CompactDirtyFrac: -1, // manual compaction only
	}
}

func basePGD(t testing.TB, seed int64) *refgraph.PGD {
	t.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs: 24, EdgeFactor: 2, Labels: 4, UncertainFrac: 0.4,
		Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
	})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	return d
}

func createDB(t testing.TB, d *refgraph.PGD, opt Options) *DB {
	t.Helper()
	db, err := Create(context.Background(), t.TempDir(), d, opt)
	if err != nil {
		t.Fatalf("live.Create: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// randomMutation draws one mutation against the current PGD state.
func randomMutation(rng *rand.Rand, d *refgraph.PGD) Mutation {
	alpha := d.Alphabet()
	switch rng.Intn(5) {
	case 0: // add-ref
		l1 := alpha.Name(prob.LabelID(rng.Intn(alpha.Len())))
		l2 := alpha.Name(prob.LabelID(rng.Intn(alpha.Len())))
		if l1 == l2 {
			return Mutation{Op: OpAddRef, Labels: []LabelP{{Label: l1, P: 1}}}
		}
		p := 0.25 + 0.5*rng.Float64()
		return Mutation{Op: OpAddRef, Labels: []LabelP{{Label: l1, P: p}, {Label: l2, P: 1 - p}}}
	case 1, 2: // add-edge (new or overwriting)
		a := refgraph.RefID(rng.Intn(d.NumRefs()))
		b := refgraph.RefID(rng.Intn(d.NumRefs()))
		for b == a {
			b = refgraph.RefID(rng.Intn(d.NumRefs()))
		}
		return Mutation{Op: OpAddEdge, A: a, B: b, P: 0.3 + 0.7*rng.Float64()}
	case 3: // set-linkage update on an existing set when possible
		if d.NumSets() > 0 {
			s := d.Set(refgraph.SetID(rng.Intn(d.NumSets())))
			return Mutation{Op: OpSetLinkage, Members: s.Members, P: rng.Float64()}
		}
		fallthrough
	default: // set-linkage on a fresh pair (nearby ids keep components small)
		a := rng.Intn(d.NumRefs() - 1)
		b := a + 1 + rng.Intn(3)
		if b >= d.NumRefs() {
			b = d.NumRefs() - 1
		}
		if a == b {
			a--
		}
		return Mutation{Op: OpSetLinkage,
			Members: []refgraph.RefID{refgraph.RefID(a), refgraph.RefID(b)},
			P:       0.2 + 0.6*rng.Float64()}
	}
}

// rebuildIndex builds a fresh index over the mutated PGD, the oracle the
// live view must match exactly.
func rebuildIndex(t testing.TB, d *refgraph.PGD) *pathindex.Index {
	t.Helper()
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatalf("rebuild entity.Build: %v", err)
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: testMaxLen, Beta: testBeta, Gamma: testGamma, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatalf("rebuild pathindex.Build: %v", err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// matchKey canonicalizes a match by the reference sets of its mapped
// entities: entity ids differ between the live graph (append-order) and a
// from-scratch rebuild (singletons-then-sets order), reference sets do not.
func matchKey(g *entity.Graph, m join.Match) string {
	var sb strings.Builder
	for _, v := range m.Mapping {
		fmt.Fprintf(&sb, "%v;", g.Refs(v))
	}
	return sb.String()
}

func sameMatchSets(t *testing.T, label string, gGot *entity.Graph, got []join.Match, gWant *entity.Graph, want []join.Match) {
	t.Helper()
	wantBy := make(map[string]join.Match, len(want))
	for _, m := range want {
		wantBy[matchKey(gWant, m)] = m
	}
	if len(got) != len(want) {
		t.Errorf("%s: %d matches, want %d", label, len(got), len(want))
		return
	}
	for _, m := range got {
		k := matchKey(gGot, m)
		w, ok := wantBy[k]
		if !ok {
			t.Errorf("%s: unexpected match %s", label, k)
			continue
		}
		if diff := m.Pr() - w.Pr(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: match %s Pr=%v want %v", label, k, m.Pr(), w.Pr())
		}
	}
}

// TestOverlayEquivalence is the overlay-correctness property: for random
// mutation sequences, query results through the live view (immutable base ⊕
// delta overlay) must exactly equal results from a from-scratch rebuild on
// the mutated PGD — across both decomposition strategies and for thresholds
// on both sides of β (exercising the stored overlay and its on-demand
// fallback).
func TestOverlayEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			d := basePGD(t, seed)
			db := createDB(t, d, testOptions())
			rng := rand.New(rand.NewSource(seed * 7))
			totalMatches, dirtyMatches := 0, 0

			for batch := 0; batch < 3; batch++ {
				var ms []Mutation
				for len(ms) < 6 {
					ms = append(ms, randomMutation(rng, db.PGDSnapshot()))
				}
				if _, err := db.Apply(ms); err != nil {
					// A batch can legitimately be rejected (e.g. linkage
					// chain exceeding the component budget); the database
					// must be untouched, so just move on.
					t.Logf("batch %d rejected: %v", batch, err)
					continue
				}
				oracle := rebuildIndex(t, db.PGDSnapshot())
				view := db.View()
				qrng := rand.New(rand.NewSource(seed*31 + int64(batch)))
				for qi := 0; qi < 3; qi++ {
					q, err := gen.RandomQuery(qrng, view.Graph().NumLabels(), 2+qrng.Intn(2), 3)
					if err != nil {
						t.Fatalf("RandomQuery: %v", err)
					}
					for _, alpha := range []float64{0.02, 0.15} {
						for _, strat := range []core.Strategy{core.StrategyOptimized, core.StrategyRandomDecomp} {
							opt := core.Options{Alpha: alpha, Strategy: strat,
								Rand: rand.New(rand.NewSource(seed ^ int64(qi)))}
							gotRes, err := core.Match(context.Background(), view, q, opt)
							if err != nil {
								t.Fatalf("live Match: %v", err)
							}
							wantRes, err := core.Match(context.Background(), oracle, q, opt)
							if err != nil {
								t.Fatalf("oracle Match: %v", err)
							}
							sameMatchSets(t,
								fmt.Sprintf("batch %d q%d α=%v %v", batch, qi, alpha, strat),
								view.Graph(), gotRes.Matches, oracle.Graph(), wantRes.Matches)
							totalMatches += len(gotRes.Matches)
							for _, m := range gotRes.Matches {
								for _, v := range m.Mapping {
									if view.dirty != nil && view.dirty[v] {
										dirtyMatches++
										break
									}
								}
							}
						}
					}
				}
			}
			if totalMatches == 0 {
				t.Error("property ran on empty match sets only — workload too sparse to prove anything")
			}
			if dirtyMatches == 0 {
				t.Error("no compared match touched a dirty entity — the overlay path went unexercised")
			}
			t.Logf("compared %d matches (%d through dirty entities)", totalMatches, dirtyMatches)
		})
	}
}

// TestApplyRollback exercises the mid-apply undo path: an asymmetric CPT
// passes the upfront validation (which only checks length) but fails inside
// AddEdge after earlier mutations of the batch already landed in the PGD —
// the whole batch must roll back without a trace.
func TestApplyRollback(t *testing.T) {
	d := basePGD(t, 8)
	db := createDB(t, d, testOptions())
	before := db.PGDSnapshot()
	badCPT := make([]float64, 16) // 4 labels; [0][1] ≠ [1][0]
	badCPT[1] = 0.9
	_, err := db.Apply([]Mutation{
		{Op: OpAddRef, Labels: []LabelP{{Label: "l0", P: 1}}},
		{Op: OpAddEdge, A: 0, B: 1, P: 0.9},
		{Op: OpSetLinkage, Members: []refgraph.RefID{0, 1}, P: 0.5},
		{Op: OpAddEdge, A: 2, B: 3, P: 0.5, CPT: badCPT},
	})
	if err == nil {
		t.Fatal("asymmetric-CPT batch was accepted")
	}
	after := db.PGDSnapshot()
	if after.NumRefs() != before.NumRefs() || after.NumEdges() != before.NumEdges() || after.NumSets() != before.NumSets() {
		t.Fatalf("rolled-back batch left traces: %d/%d/%d vs %d/%d/%d",
			after.NumRefs(), after.NumEdges(), after.NumSets(),
			before.NumRefs(), before.NumEdges(), before.NumSets())
	}
	if got := db.Status().Mutations; got != 0 {
		t.Fatalf("rolled-back batch counted %d mutations", got)
	}
	// The database keeps working after a rollback.
	if _, err := db.Apply([]Mutation{{Op: OpAddEdge, A: 0, B: 1, P: 0.9}}); err != nil {
		t.Fatalf("Apply after rollback: %v", err)
	}
	oracle := rebuildIndex(t, db.PGDSnapshot())
	view := db.View()
	q, err := gen.RandomQuery(rand.New(rand.NewSource(6)), view.Graph().NumLabels(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Match(context.Background(), view, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want, err := core.Match(context.Background(), oracle, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatalf("oracle Match: %v", err)
	}
	sameMatchSets(t, "post-rollback", view.Graph(), got.Matches, oracle.Graph(), want.Matches)
}

// TestWALRecovery closes a mutated database and reopens it: the replayed
// WAL must reproduce the same logical state.
func TestWALRecovery(t *testing.T) {
	d := basePGD(t, 5)
	dir := t.TempDir()
	db, err := Create(context.Background(), dir, d, testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	var applied int
	for i := 0; i < 8; i++ {
		if _, err := db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())}); err == nil {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no mutation applied")
	}
	snap := db.PGDSnapshot()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if got := db2.Status().Mutations; got != uint64(applied) {
		t.Fatalf("recovered %d mutations, want %d", got, applied)
	}
	oracle := rebuildIndex(t, snap)
	view := db2.View()
	qrng := rand.New(rand.NewSource(3))
	q, err := gen.RandomQuery(qrng, view.Graph().NumLabels(), 3, 3)
	if err != nil {
		t.Fatalf("RandomQuery: %v", err)
	}
	got, err := core.Match(context.Background(), view, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want, err := core.Match(context.Background(), oracle, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatalf("oracle Match: %v", err)
	}
	sameMatchSets(t, "recovered", view.Graph(), got.Matches, oracle.Graph(), want.Matches)
}

// TestWALTornTail corrupts the WAL tail; Open must recover everything up to
// the corruption and drop the torn record.
func TestWALTornTail(t *testing.T) {
	d := basePGD(t, 6)
	dir := t.TempDir()
	db, err := Create(context.Background(), dir, d, testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := db.Apply([]Mutation{{Op: OpAddEdge, A: 0, B: 1, P: 0.9}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	walPath := db.walPath(1)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Append garbage simulating a torn write.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer db2.Close()
	if got := db2.Status().Mutations; got != 1 {
		t.Fatalf("recovered %d mutations, want 1", got)
	}
}

// TestDirectoryLock: a second process (simulated by a second Open in this
// one) must not attach to a live database — interleaved WAL appends would
// corrupt it past CRC recovery.
func TestDirectoryLock(t *testing.T) {
	d := basePGD(t, 9)
	dir := t.TempDir()
	db, err := Create(context.Background(), dir, d, testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := Open(dir, testOptions()); err == nil || !strings.Contains(err.Error(), "another process") {
		t.Fatalf("second Open while locked: err = %v, want lock refusal", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	db2.Close()
}

// TestOpenInheritsIndexParams: reopening with different index flags must
// not silently change the parameters future compactions build with.
func TestOpenInheritsIndexParams(t *testing.T) {
	d := basePGD(t, 10)
	dir := t.TempDir()
	db, err := Create(context.Background(), dir, d, testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	db.Close()
	opt := testOptions()
	opt.Index = pathindex.Options{MaxLen: 1, Beta: 0.5, Gamma: 0.5} // drifted flags
	db2, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db2.Close()
	if err := db2.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	v := db2.View()
	if v.MaxLen() != testMaxLen || v.Beta() != testBeta {
		t.Fatalf("compacted generation built with drifted params: L=%d β=%v", v.MaxLen(), v.Beta())
	}
}

// TestCompaction folds the overlay into a new generation and checks the
// published view still answers exactly like a rebuild, that the directory
// rotated, and that post-compaction mutations keep working.
func TestCompaction(t *testing.T) {
	d := basePGD(t, 7)
	dir := t.TempDir()
	db, err := Create(context.Background(), dir, d, testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 6; i++ {
		db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())})
	}
	if db.View().Mutations() == 0 {
		t.Fatal("no mutation applied before compaction")
	}
	if err := db.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := db.Status()
	if st.Generation != 2 || st.Mutations != 0 || st.Compactions != 1 {
		t.Fatalf("status after compaction: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000001")); !os.IsNotExist(err) {
		t.Errorf("old generation dir not removed (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-000002")); err != nil {
		t.Errorf("new generation dir missing: %v", err)
	}

	// Post-compaction mutations land on the new base.
	for i := 0; i < 3; i++ {
		db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())})
	}
	oracle := rebuildIndex(t, db.PGDSnapshot())
	view := db.View()
	qrng := rand.New(rand.NewSource(4))
	q, err := gen.RandomQuery(qrng, view.Graph().NumLabels(), 3, 3)
	if err != nil {
		t.Fatalf("RandomQuery: %v", err)
	}
	got, err := core.Match(context.Background(), view, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	want, err := core.Match(context.Background(), oracle, q, core.Options{Alpha: 0.1})
	if err != nil {
		t.Fatalf("oracle Match: %v", err)
	}
	sameMatchSets(t, "post-compaction", view.Graph(), got.Matches, oracle.Graph(), want.Matches)
}

// TestConcurrentIngestAndMatch is the -race stress: readers stream matches
// continuously while a writer applies mutation batches and automatic
// compactions publish new generations. Every query must succeed — the point
// of the generation-swap design is zero read downtime.
func TestConcurrentIngestAndMatch(t *testing.T) {
	d := basePGD(t, 11)
	opt := testOptions()
	opt.CompactEvery = 6 // force compactions mid-stress
	db := createDB(t, d, opt)

	q, err := gen.RandomQuery(rand.New(rand.NewSource(2)), 4, 3, 3)
	if err != nil {
		t.Fatalf("RandomQuery: %v", err)
	}
	var (
		stop    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	readers := 4
	if testing.Short() {
		readers = 2
	}
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := core.MatchStream(context.Background(), db.View(), q,
					core.Options{Alpha: 0.1}, func(join.Match) bool { return true })
				if err != nil {
					errs <- err
					return
				}
				queries.Add(1)
			}
		}()
	}

	rng := rand.New(rand.NewSource(23))
	writes := 40
	if testing.Short() {
		writes = 15
	}
	for i := 0; i < writes; i++ {
		db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())})
	}
	// Keep the readers hammering until a background compaction has actually
	// published — that swap is exactly the moment the test is about.
	for deadline := time.Now().Add(30 * time.Second); db.Status().Compactions == 0 || db.Status().Compacting; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("query failed during ingest: %v", err)
	default:
	}
	if queries.Load() == 0 {
		t.Fatal("no query completed during the stress run")
	}
	if db.Status().Compactions == 0 {
		t.Error("no compaction triggered by the mutation volume")
	}
	t.Logf("served %d queries across %d writes and %d compactions",
		queries.Load(), writes, db.Status().Compactions)
}

// BenchmarkServeDuringIngest measures query latency while a writer applies
// mutations and compactions publish fresh generations in the background —
// the no-downtime acceptance benchmark: every iteration is a full query
// served successfully regardless of concurrent writes.
func BenchmarkServeDuringIngest(b *testing.B) {
	d := basePGD(b, 13)
	db := createDB(b, d, testOptions())
	q, err := gen.RandomQuery(rand.New(rand.NewSource(2)), 4, 3, 3)
	if err != nil {
		b.Fatalf("RandomQuery: %v", err)
	}

	// Seed the overlay so every measured query exercises the merged
	// base ⊕ overlay path, then keep mutating concurrently.
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 10; i++ {
		db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())})
	}
	var stop atomic.Bool
	var writerDone sync.WaitGroup
	var writes atomic.Int64
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		for n := 1; !stop.Load(); n++ {
			db.Apply([]Mutation{randomMutation(rng, db.PGDSnapshot())})
			writes.Add(1)
			if n%16 == 0 {
				// Fold the overlay into a fresh on-disk generation while
				// queries are being timed: the swap must cost readers
				// nothing.
				db.Compact(context.Background())
			}
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MatchStream(context.Background(), db.View(), q,
			core.Options{Alpha: 0.1}, func(join.Match) bool { return true }); err != nil {
			b.Fatalf("query failed during ingest: %v", err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	writerDone.Wait()
	st := db.Status()
	b.ReportMetric(float64(st.Compactions), "compactions")
	b.ReportMetric(float64(writes.Load()), "writes")
}
