package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The write-ahead log is an append-only record log with the same framing
// idiom as storage/hashdict: a 4-byte magic, then per record
// crc32(payload) ‖ len(payload) ‖ payload. One record carries one whole
// mutation batch (a count followed by length-prefixed mutations), so the
// unit of durability equals the unit of acknowledgment: replay loads
// records until EOF or the first corrupt record and truncates the torn
// tail, and a crash mid-append can never resurrect a prefix of an
// unacknowledged batch.
const (
	walMagic     = "PEGW"
	walRecHeader = 4 + 4
	// walMaxPayload bounds one batch record; generous because a record now
	// carries a whole ingest batch (up to thousands of mutations).
	walMaxPayload = 1 << 26
)

type wal struct {
	f    *os.File
	path string
	// size is the known-good end of the log: everything below it is
	// acknowledged, everything above is garbage from a failed append. A
	// failed append truncates back to it so torn bytes can never sit in
	// front of (and at recovery swallow) later acknowledged records.
	size int64
	// broken is set when even the rollback truncate failed; the log can no
	// longer guarantee its invariant and refuses further appends.
	broken bool
}

// createWAL creates a fresh, empty log (truncating any previous file).
func createWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("live: wal: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: wal: %w", err)
	}
	return &wal{f: f, path: path, size: int64(len(walMagic))}, nil
}

// openWAL opens an existing log, replaying its mutations and truncating any
// corrupt tail. The file position is left at the end for appending.
func openWAL(path string) (*wal, []Mutation, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("live: wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("live: wal: %w", err)
	}
	size := st.Size()
	hdr := make([]byte, len(walMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil || string(hdr) != walMagic {
		f.Close()
		return nil, nil, fmt.Errorf("live: wal: bad magic %q", hdr)
	}
	var (
		muts []Mutation
		off  = int64(len(walMagic))
		rec  [walRecHeader]byte
	)
	for off < size {
		if _, err := f.ReadAt(rec[:], off); err != nil {
			break
		}
		want := binary.LittleEndian.Uint32(rec[0:])
		plen := binary.LittleEndian.Uint32(rec[4:])
		if plen == 0 || plen > walMaxPayload || off+walRecHeader+int64(plen) > size {
			break
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+walRecHeader); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			break
		}
		muts = append(muts, batch...)
		off += walRecHeader + int64(plen)
	}
	if off < size {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("live: wal: truncate corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("live: wal: %w", err)
	}
	return &wal{f: f, path: path, size: off}, muts, nil
}

// encodeBatch serializes a mutation batch as one WAL record payload:
// count ‖ (len ‖ mutation)×count.
func encodeBatch(ms []Mutation) ([]byte, error) {
	var buf []byte
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(ms)))
	buf = append(buf, n[:]...)
	for i := range ms {
		payload, err := ms[i].encode()
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
		buf = append(buf, n[:]...)
		buf = append(buf, payload...)
	}
	if len(buf) > walMaxPayload {
		return nil, fmt.Errorf("live: wal batch of %d bytes too large", len(buf))
	}
	return buf, nil
}

// decodeBatch parses one WAL record payload back into its mutation batch.
func decodeBatch(payload []byte) ([]Mutation, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("live: wal batch too short")
	}
	count := binary.LittleEndian.Uint32(payload)
	payload = payload[4:]
	ms := make([]Mutation, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("live: wal batch truncated at mutation %d", i)
		}
		mlen := binary.LittleEndian.Uint32(payload)
		payload = payload[4:]
		if uint32(len(payload)) < mlen {
			return nil, fmt.Errorf("live: wal batch truncated at mutation %d", i)
		}
		m, err := decodeMutation(payload[:mlen])
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
		payload = payload[mlen:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("live: wal batch has %d trailing bytes", len(payload))
	}
	return ms, nil
}

// append writes one mutation batch as a single fsynced record, so a batch
// is durable exactly when it is acknowledged — all of it or none of it. On
// any failure the log is rolled back to its last known-good end: a partial
// record must not linger (recovery would truncate at it, swallowing later
// acknowledged batches), and a fully written but unacknowledged record must
// not replay (the client was told the batch failed).
func (w *wal) append(ms []Mutation) error {
	if w.broken {
		return fmt.Errorf("live: wal unusable after failed rollback")
	}
	payload, err := encodeBatch(ms)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, walRecHeader+len(payload))
	var hdr [walRecHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	fail := func(op string, err error) error {
		if w.f.Truncate(w.size) != nil {
			w.broken = true
		} else if _, serr := w.f.Seek(w.size, 0); serr != nil {
			w.broken = true
		}
		return fmt.Errorf("live: wal %s: %w", op, err)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fail("append", err)
	}
	if err := w.f.Sync(); err != nil {
		return fail("sync", err)
	}
	w.size += int64(len(buf))
	return nil
}

// writeWAL creates a log at path pre-populated with the given mutations
// (used by compaction to rotate the tail of the old log into the new
// generation's log).
func writeWAL(path string, ms []Mutation) (*wal, error) {
	w, err := createWAL(path)
	if err != nil {
		return nil, err
	}
	if len(ms) > 0 {
		if err := w.append(ms); err != nil {
			w.Close()
			return nil, err
		}
	}
	return w, nil
}

// Close syncs and closes the log.
func (w *wal) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
