package live

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pathindex"
	"repro/internal/prob"
)

// TestIngestFormatEquivalence runs one mutation stream into two databases
// that differ only in their base index format — v1 B+-tree vs v2 packed —
// and requires the two live views (delta overlay ⊕ base) to answer every
// probe bitwise-identically: same matches in the same order, same Prle/Prn
// bits, same cardinality bits. The graphs are built from the same PGD with
// the same append order, so entity ids line up exactly.
func TestIngestFormatEquivalence(t *testing.T) {
	for _, seed := range []int64{4, 5} {
		d := basePGD(t, seed)
		optV1 := testOptions()
		optV1.Index.Format = pathindex.FormatBTree
		dbV1 := createDB(t, d, optV1)
		dbV2 := createDB(t, basePGD(t, seed), testOptions())
		if got := dbV2.View().IndexMetrics().Format; got != "v2" {
			t.Fatalf("packed DB base format %q", got)
		}
		if got := dbV1.View().IndexMetrics().Format; got != "v1" {
			t.Fatalf("btree DB base format %q", got)
		}

		rng := rand.New(rand.NewSource(seed * 13))
		for batch := 0; batch < 3; batch++ {
			var ms []Mutation
			for len(ms) < 5 {
				ms = append(ms, randomMutation(rng, dbV1.PGDSnapshot()))
			}
			_, err1 := dbV1.Apply(ms)
			_, err2 := dbV2.Apply(ms)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d batch %d: apply diverged: %v vs %v", seed, batch, err1, err2)
			}
			if err1 != nil {
				continue
			}
			v1, v2 := dbV1.View(), dbV2.View()
			nl := v1.Graph().NumLabels()
			var probe func(X []prob.LabelID)
			probe = func(X []prob.LabelID) {
				if len(X) > 0 {
					for _, alpha := range []float64{0.02, 0.12, 0.4} {
						m1, e1 := v1.Lookup(X, alpha)
						m2, e2 := v2.Lookup(X, alpha)
						if (e1 == nil) != (e2 == nil) {
							t.Fatalf("X=%v α=%v: %v vs %v", X, alpha, e1, e2)
						}
						if len(m1) != len(m2) {
							t.Fatalf("seed %d batch %d X=%v α=%v: %d vs %d matches",
								seed, batch, X, alpha, len(m1), len(m2))
						}
						for i := range m1 {
							if !reflect.DeepEqual(m1[i].Nodes, m2[i].Nodes) ||
								math.Float64bits(m1[i].Prle) != math.Float64bits(m2[i].Prle) ||
								math.Float64bits(m1[i].Prn) != math.Float64bits(m2[i].Prn) {
								t.Fatalf("X=%v α=%v match %d: %+v vs %+v", X, alpha, i, m1[i], m2[i])
							}
						}
						if c1, c2 := v1.Cardinality(X, alpha), v2.Cardinality(X, alpha); math.Float64bits(c1) != math.Float64bits(c2) {
							t.Fatalf("X=%v α=%v: cardinality %v vs %v", X, alpha, c1, c2)
						}
					}
				}
				if len(X) == 3 {
					return
				}
				for l := 0; l < nl; l++ {
					probe(append(X, prob.LabelID(l)))
				}
			}
			probe(nil)
		}
	}
}
