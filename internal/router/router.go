// Package router implements the cluster tier's online half: a stateless
// scatter-gather front end over N component-partitioned shards (see
// internal/shard). The router loads the manifest catalog, fans every query
// out to one replica of every shard over the existing HTTP/JSON protocol,
// translates shard-local entity ids back into the global id space, and
// merges the per-shard results under the same total orders the single-node
// server uses — so for a connected query the routed answer is byte-identical
// to the single-node answer (the partition is lossless and the id
// translation is strictly monotone).
//
// Failure handling: every shard call runs under its own timeout and is
// hedged to a second healthy replica after an adaptive (p99-based) delay;
// a shard that still fails is reported through partial:true and
// shards_failed on the response (or the whole request fails with 502 under
// RequireAll). Replica health is tracked by polling GET /healthz (the
// shards' readiness probe), and per-replica in-flight counts steer each
// call to the least-loaded healthy replica.
package router

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Options configures a Router.
type Options struct {
	// Replicas[s] lists the base URLs (e.g. "http://host:8080") serving
	// shard s. Every shard needs at least one.
	Replicas [][]string
	// ShardTimeout caps each per-shard call, streams included (0 = 30s).
	ShardTimeout time.Duration
	// HedgeAfter is the delay before a buffered shard call is hedged to a
	// second healthy replica: 0 selects an adaptive delay (the shard's
	// observed p99 latency, clamped to [5ms, ShardTimeout/2]), negative
	// disables hedging.
	HedgeAfter time.Duration
	// RequireAll makes any shard failure fail the whole request with 502
	// instead of returning a partial result.
	RequireAll bool
	// HealthEvery is the replica health-poll interval (0 = 2s, negative
	// disables polling; replicas then stay in their initial healthy state).
	HealthEvery time.Duration
	// Client issues the shard calls (nil = a dedicated client with sane
	// connection pooling).
	Client *http.Client
	// DisableMetrics leaves GET /metrics unregistered.
	DisableMetrics bool
	// Tracer enables span-structured distributed tracing: a root span per
	// request, a child span per shard attempt (annotated with the replica
	// and the failover/hedge cause), traceparent + deadline propagation to
	// shards, and GET /debug/trace/{id} over the ring buffer.
	Tracer *trace.Tracer
	// TraceWriter receives one NDJSON request-trace line per finished
	// request when tracing is selected (TraceAll, or the request's trace
	// flag) — the same event shape pegserve writes, with trace_id, so
	// router and shard trace lines correlate. Nil disables it.
	TraceWriter io.Writer
	// TraceAll traces every request instead of only those asking for it.
	TraceAll bool
}

func (o *Options) normalize() {
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 30 * time.Second
	}
	if o.HealthEvery == 0 {
		o.HealthEvery = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
}

// replica is one backend process serving a shard.
type replica struct {
	url      string
	healthy  atomic.Bool
	inflight atomic.Int64
}

// latRing is a fixed ring of recent per-shard latency samples; its p99
// drives the adaptive hedge delay.
type latRing struct {
	mu  sync.Mutex
	buf [128]float64
	n   int // filled entries
	i   int // next write slot
}

func (l *latRing) add(v float64) {
	l.mu.Lock()
	l.buf[l.i] = v
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latRing) p99() (float64, bool) {
	l.mu.Lock()
	n := l.n
	s := make([]float64, n)
	copy(s, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, false
	}
	sort.Float64s(s)
	return s[(n*99)/100], true
}

// Router is the stateless scatter-gather front end. All state it holds is
// soft (health flags, latency samples, counters): any number of routers can
// serve the same manifest concurrently.
type Router struct {
	opt      Options
	manifest *shard.Manifest
	alphabet *prob.Alphabet
	idmaps   []*shard.IDMap
	replicas [][]*replica
	lat      []latRing
	start    time.Time
	stop     chan struct{}
	stopOnce sync.Once

	met     *routerMetrics
	traceMu sync.Mutex // serializes NDJSON trace lines onto TraceWriter
}

// New builds a router over a loaded manifest and starts the replica health
// loop (unless disabled). Close releases it.
func New(m *shard.Manifest, opt Options) (*Router, error) {
	opt.normalize()
	if len(opt.Replicas) != m.Shards {
		return nil, fmt.Errorf("router: %d replica lists for %d shards", len(opt.Replicas), m.Shards)
	}
	alphabet, err := prob.NewAlphabet(m.Labels...)
	if err != nil {
		return nil, fmt.Errorf("router: manifest alphabet: %w", err)
	}
	r := &Router{
		opt:      opt,
		manifest: m,
		alphabet: alphabet,
		idmaps:   make([]*shard.IDMap, m.Shards),
		replicas: make([][]*replica, m.Shards),
		lat:      make([]latRing, m.Shards),
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	for s := 0; s < m.Shards; s++ {
		if len(opt.Replicas[s]) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
		r.idmaps[s] = m.IDMap(s)
		for _, u := range opt.Replicas[s] {
			rep := &replica{url: u}
			// Start healthy: a router must be able to route before the first
			// poll lands, and a dead replica fails fast on its own.
			rep.healthy.Store(true)
			r.replicas[s] = append(r.replicas[s], rep)
		}
	}
	r.met = newRouterMetrics(r)
	if opt.HealthEvery > 0 {
		go r.healthLoop()
	}
	return r, nil
}

// Close stops the health loop.
func (r *Router) Close() { r.stopOnce.Do(func() { close(r.stop) }) }

// healthLoop polls every replica's readiness probe. A replica is healthy
// iff its shard answers GET /healthz with 200 — which the shard only does
// with an index installed and no publish swap in flight.
func (r *Router) healthLoop() {
	t := time.NewTicker(r.opt.HealthEvery)
	defer t.Stop()
	for {
		r.pollHealth()
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

func (r *Router) pollHealth() {
	var wg sync.WaitGroup
	for _, reps := range r.replicas {
		for _, rep := range reps {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
				if err != nil {
					rep.healthy.Store(false)
					return
				}
				resp, err := r.opt.Client.Do(req)
				if err != nil {
					rep.healthy.Store(false)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				rep.healthy.Store(resp.StatusCode == http.StatusOK)
			}(rep)
		}
	}
	wg.Wait()
}

// pick selects the least-loaded healthy replica of shard s not in tried
// (lowest index on ties). With every healthy replica tried — or none
// healthy — it falls back to any untried replica: attempting a possibly-down
// backend beats failing without trying.
func (r *Router) pick(s int, tried map[*replica]bool) *replica {
	var best *replica
	for _, pass := range []bool{true, false} { // healthy first, then any
		for _, rep := range r.replicas[s] {
			if tried[rep] || rep.healthy.Load() != pass {
				continue
			}
			if best == nil || rep.inflight.Load() < best.inflight.Load() {
				best = rep
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

// hedgeDelay is how long a buffered call waits before trying a second
// replica: the configured fixed delay, or the shard's observed p99 clamped
// into [5ms, ShardTimeout/2]. Negative HedgeAfter reports false (disabled).
func (r *Router) hedgeDelay(s int) (time.Duration, bool) {
	if r.opt.HedgeAfter < 0 {
		return 0, false
	}
	if r.opt.HedgeAfter > 0 {
		return r.opt.HedgeAfter, true
	}
	lo, hi := 5*time.Millisecond, r.opt.ShardTimeout/2
	p99, ok := r.lat[s].p99()
	if !ok {
		return 25 * time.Millisecond, true
	}
	d := time.Duration(p99 * float64(time.Second))
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d, true
}

// shardError is a failed shard call carrying the backend's HTTP status (0
// for transport errors).
type shardError struct {
	status int
	msg    string
}

func (e *shardError) Error() string { return e.msg }

// propagate stamps cross-process context onto one outbound shard request:
// the trace context (the attempt span's, so shard-side spans parent to the
// attempt; the client's own context passes through when the router has no
// tracer) and the remaining deadline budget, so a shard stops working for
// an attempt the router has already abandoned.
func propagate(ctx context.Context, sp *trace.Span, h http.Header) {
	if sc := sp.Context(); sc.Valid() {
		trace.Inject(sc, h)
	} else if rsc, ok := trace.RemoteFromContext(ctx); ok {
		trace.Inject(rsc, h)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			h.Set(server.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
}

// startAttempt opens the per-attempt child span. cause records why this
// attempt launched: "primary", "failover", or "hedge".
func (r *Router) startAttempt(ctx context.Context, name string, s int, rep *replica, cause string) *trace.Span {
	_, sp := r.opt.Tracer.StartSpan(ctx, name)
	sp.SetAttr("shard", strconv.Itoa(s))
	sp.SetAttr("replica", rep.url)
	sp.SetAttr("cause", cause)
	return sp
}

// endAttempt settles an attempt span with its outcome ("ok", "error", or
// the backend's HTTP status).
func endAttempt(sp *trace.Span, outcome string, err error) {
	if sp == nil {
		return
	}
	sp.SetAttr("outcome", outcome)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
}

// doOnce issues one POST to one replica and reads the whole response,
// recording latency, in-flight accounting, and the attempt span.
func (r *Router) doOnce(ctx context.Context, s int, rep *replica, path string, body []byte, reqID, cause string) ([]byte, error) {
	asp := r.startAttempt(ctx, "shard.attempt", s, rep, cause)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		e := &shardError{msg: err.Error()}
		endAttempt(asp, "error", e)
		return nil, e
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.RequestIDHeader, reqID)
	propagate(ctx, asp, req.Header)
	rep.inflight.Add(1)
	start := time.Now()
	resp, err := r.opt.Client.Do(req)
	elapsed := time.Since(start).Seconds()
	rep.inflight.Add(-1)
	r.lat[s].add(elapsed)
	shardLabel := fmt.Sprint(s)
	r.met.shardLatency.WithLabelValue(shardLabel).Observe(elapsed)
	if err != nil {
		r.met.shardRequests.WithLabelValues(shardLabel, "error").Inc()
		e := &shardError{msg: err.Error()}
		endAttempt(asp, "error", e)
		return nil, e
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		r.met.shardRequests.WithLabelValues(shardLabel, "error").Inc()
		e := &shardError{msg: err.Error()}
		endAttempt(asp, "error", e)
		return nil, e
	}
	if resp.StatusCode != http.StatusOK {
		r.met.shardRequests.WithLabelValues(shardLabel, fmt.Sprint(resp.StatusCode)).Inc()
		var je struct {
			Error string `json:"error"`
		}
		msg := fmt.Sprintf("shard %d: HTTP %d", s, resp.StatusCode)
		if json.Unmarshal(b, &je) == nil && je.Error != "" {
			msg = fmt.Sprintf("shard %d: %s", s, je.Error)
		}
		e := &shardError{status: resp.StatusCode, msg: msg}
		endAttempt(asp, strconv.Itoa(resp.StatusCode), e)
		return nil, e
	}
	r.met.shardRequests.WithLabelValues(shardLabel, "ok").Inc()
	endAttempt(asp, "ok", nil)
	return b, nil
}

// callShard runs one buffered shard call with failover and hedging: the
// primary replica is tried first; an error fails over to the next untried
// replica immediately, and a response slower than the hedge delay races a
// second replica (first answer wins).
func (r *Router) callShard(ctx context.Context, s int, path string, body []byte, reqID string) ([]byte, error) {
	cctx, cancel := context.WithTimeout(ctx, r.opt.ShardTimeout)
	defer cancel()

	type result struct {
		body []byte
		err  error
	}
	ch := make(chan result, len(r.replicas[s]))
	tried := make(map[*replica]bool)
	launch := func(cause string) bool {
		rep := r.pick(s, tried)
		if rep == nil {
			return false
		}
		tried[rep] = true
		go func() {
			b, err := r.doOnce(cctx, s, rep, path, body, reqID, cause)
			ch <- result{b, err}
		}()
		return true
	}
	if !launch("primary") {
		return nil, &shardError{msg: fmt.Sprintf("shard %d: no replicas", s)}
	}
	inFlight := 1

	var hedgeC <-chan time.Time
	if d, ok := r.hedgeDelay(s); ok && len(r.replicas[s]) > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case res := <-ch:
			inFlight--
			if res.err == nil {
				return res.body, nil
			}
			lastErr = res.err
			// A 4xx is the request's own fault and will fail identically on
			// every replica — no failover.
			var se *shardError
			if errors.As(res.err, &se) && se.status >= 400 && se.status < 500 {
				return nil, res.err
			}
			if launch("failover") {
				inFlight++
			} else if inFlight == 0 {
				return nil, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if launch("hedge") {
				inFlight++
				r.met.hedges.WithLabelValues(fmt.Sprint(s)).Inc()
			}
		case <-cctx.Done():
			if lastErr == nil {
				lastErr = &shardError{msg: fmt.Sprintf("shard %d: %v", s, cctx.Err())}
			}
			return nil, lastErr
		}
	}
}

// newRequestID mints a 16-hex-digit correlation id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID returns the client's X-Request-ID, minting one if absent, and
// echoes it onto the response.
func (r *Router) requestID(w http.ResponseWriter, req *http.Request) string {
	id := req.Header.Get(server.RequestIDHeader)
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set(server.RequestIDHeader, id)
	return id
}

// reqState threads one routed request's observability context — endpoint,
// wall-clock start, correlation id, root span, decoded body — to its
// terminal settle call.
type reqState struct {
	endpoint string
	start    time.Time
	reqID    string
	sp       *trace.Span
	mr       *server.MatchRequest // nil until parseRequest succeeds
}

// startRequest opens the router-side observability context for one
// request: the correlation id (echoed onto the response) and, with a
// tracer configured, the root span — continuing the client's traceparent
// when one was sent. The returned context carries the span (or the raw
// remote context when tracing is off, so it can pass through to shards).
func (r *Router) startRequest(w http.ResponseWriter, req *http.Request, endpoint, spanName string) (context.Context, *reqState) {
	st := &reqState{endpoint: endpoint, start: time.Now(), reqID: r.requestID(w, req)}
	ctx := req.Context()
	if sc, ok := trace.Extract(req.Header); ok {
		ctx = trace.ContextWithRemote(ctx, sc)
	}
	if r.opt.Tracer != nil {
		ctx, st.sp = r.opt.Tracer.StartSpan(ctx, spanName)
		st.sp.SetAttr("request_id", st.reqID)
	}
	return ctx, st
}

// settle is the single terminal path of a routed request: metrics, the
// root span, and — when tracing selects this request — one NDJSON trace
// line in the same event shape pegserve writes.
func (r *Router) settle(st *reqState, outcome string, err error, matches int, failed []int) {
	r.finish(st.endpoint, st.start, outcome)
	if st.sp != nil {
		st.sp.SetAttr("outcome", outcome)
		if err != nil {
			st.sp.SetAttr("error", err.Error())
		}
		if len(failed) > 0 {
			st.sp.SetAttr("shards_failed", fmt.Sprint(failed))
		}
		st.sp.End()
	}
	if r.opt.TraceWriter == nil || !(r.opt.TraceAll || (st.mr != nil && st.mr.Trace)) {
		return
	}
	ev := routerTraceEvent{
		Time:           time.Now().UTC().Format(time.RFC3339Nano),
		TraceID:        st.sp.TraceID(),
		RequestID:      st.reqID,
		Endpoint:       st.endpoint,
		Outcome:        outcome,
		DurationMicros: float64(time.Since(st.start).Nanoseconds()) / 1e3,
		Matches:        matches,
		ShardsFailed:   failed,
		Partial:        outcome == "partial",
	}
	if st.mr != nil {
		ev.Query, ev.Alpha, ev.Strategy, ev.Order, ev.Limit =
			st.mr.Query, st.mr.Alpha, st.mr.Strategy, st.mr.Order, st.mr.Limit
	}
	if err != nil {
		ev.Error = err.Error()
	}
	line, merr := json.Marshal(&ev)
	if merr != nil {
		return
	}
	line = append(line, '\n')
	r.traceMu.Lock()
	_, _ = r.opt.TraceWriter.Write(line)
	r.traceMu.Unlock()
}

// routerTraceEvent is the router's NDJSON request-trace line: the same
// shape as pegserve's traceEvent (so one jq filter reads both logs) plus
// the router-only partial/shards_failed fields. The shared trace_id is
// what lets the cluster smoke correlate a router line with the shard
// lines it fanned out to.
type routerTraceEvent struct {
	Time           string  `json:"ts"`
	TraceID        string  `json:"trace_id,omitempty"`
	RequestID      string  `json:"request_id,omitempty"`
	Endpoint       string  `json:"endpoint"`
	Outcome        string  `json:"outcome"`
	DurationMicros float64 `json:"duration_us"`
	Query          string  `json:"query,omitempty"`
	Alpha          float64 `json:"alpha,omitempty"`
	Strategy       string  `json:"strategy,omitempty"`
	Order          string  `json:"order,omitempty"`
	Limit          int     `json:"limit,omitempty"`
	Error          string  `json:"error,omitempty"`
	Matches        int     `json:"matches,omitempty"`
	Partial        bool    `json:"partial,omitempty"`
	ShardsFailed   []int   `json:"shards_failed,omitempty"`
}

// parseRequest decodes and pre-validates one match request at the router:
// the query must parse against the manifest's alphabet and be connected —
// a disconnected query's matches combine partial mappings across linkage
// closures, which no single shard can see, so the router rejects it rather
// than return silently wrong results.
func (r *Router) parseRequest(req *http.Request, w http.ResponseWriter) (*server.MatchRequest, []byte, error) {
	var mr server.MatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 8<<20)).Decode(&mr); err != nil {
		return nil, nil, &shardError{status: http.StatusBadRequest, msg: fmt.Sprintf("malformed request: %v", err)}
	}
	q, err := query.ParseString(mr.Query, r.alphabet)
	if err != nil {
		return nil, nil, &shardError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if err := q.Validate(r.alphabet); err != nil {
		return nil, nil, &shardError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if !q.Connected() {
		return nil, nil, &shardError{status: http.StatusBadRequest,
			msg: "disconnected query: matches would span multiple shards; split it into its connected components"}
	}
	if _, _, err := server.ParseStrategy(mr.Strategy); err != nil {
		return nil, nil, &shardError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if _, _, err := server.ParseOrder(mr.Order); err != nil {
		return nil, nil, &shardError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if mr.Limit < 0 {
		return nil, nil, &shardError{status: http.StatusBadRequest, msg: fmt.Sprintf("negative limit %d", mr.Limit)}
	}
	body, err := json.Marshal(&mr)
	if err != nil {
		return nil, nil, err
	}
	return &mr, body, nil
}

// translate rewrites one shard-local match mapping into global entity ids.
func (r *Router) translate(s int, e *server.MatchEntry) error {
	im := r.idmaps[s]
	for i, v := range e.Mapping {
		g, ok := im.Global(v)
		if !ok {
			return fmt.Errorf("shard %d returned unknown local entity id %d", s, v)
		}
		e.Mapping[i] = g
	}
	return nil
}

// emitLess is the collect total order — mapping-lexicographic ascending,
// probability descending on equal mappings — exactly core.Match's
// plan.SortMatches order, so the merged collect answer is byte-identical to
// the single-node answer.
func emitLess(a, b *server.MatchEntry) bool {
	for k := range a.Mapping {
		if k >= len(b.Mapping) {
			return false
		}
		if a.Mapping[k] != b.Mapping[k] {
			return a.Mapping[k] < b.Mapping[k]
		}
	}
	if len(a.Mapping) < len(b.Mapping) {
		return true
	}
	return a.Pr > b.Pr
}

// probBetter is the top-K total order — probability descending, mapping
// ascending on ties — exactly the executor's betterMatch order. The id
// translation is strictly monotone, so per-shard rankings agree with the
// global ranking and a k-way merge of sorted shard streams is globally
// sorted.
func probBetter(a, b *server.MatchEntry) bool {
	if a.Pr != b.Pr {
		return a.Pr > b.Pr
	}
	for k := range a.Mapping {
		if k >= len(b.Mapping) {
			return false
		}
		if a.Mapping[k] != b.Mapping[k] {
			return a.Mapping[k] < b.Mapping[k]
		}
	}
	return false
}

// addStats folds one shard's per-request statistics into the aggregate: the
// counters add up, and the shards ran concurrently so the aggregate stage
// times report total work, not wall clock. The plan tree and stage
// breakdown are per-shard artifacts and are not aggregated.
func addStats(dst, src *server.MatchStats) {
	if src == nil {
		return
	}
	dst.NumPaths += src.NumPaths
	dst.SSFinal += src.SSFinal
	dst.TotalMicros += src.TotalMicros
	dst.PlanMicros += src.PlanMicros
	dst.DecomposeMicros += src.DecomposeMicros
	dst.CandidateMicros += src.CandidateMicros
	dst.ReduceMicros += src.ReduceMicros
	dst.JoinMicros += src.JoinMicros
}

// MatchResponse is the router's answer to POST /match: the single-node
// response shape plus the partial-failure report.
type MatchResponse struct {
	server.MatchResponse
	// Partial reports that at least one shard failed and its matches are
	// missing (never set under RequireAll, which fails the request instead).
	Partial bool `json:"partial,omitempty"`
	// ShardsFailed lists the failed shards, ascending.
	ShardsFailed []int `json:"shards_failed,omitempty"`
}

// scatter fans one buffered call to every shard concurrently and gathers
// per-shard bodies and failures (failed ascending).
func (r *Router) scatter(ctx context.Context, path string, body []byte, reqID string) (bodies [][]byte, failed []int, errs []error) {
	n := r.manifest.Shards
	bodies = make([][]byte, n)
	errsBy := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			b, err := r.callShard(ctx, s, path, body, reqID)
			bodies[s], errsBy[s] = b, err
		}(s)
	}
	wg.Wait()
	for s, err := range errsBy {
		if err != nil {
			failed = append(failed, s)
			errs = append(errs, err)
		}
	}
	return bodies, failed, errs
}

// handleMatch scatters one buffered match to every shard and merges: collect
// answers re-sort under the single-node mapping order, top-K answers merge
// the per-shard top-K sets under the probability order and cut at K.
func (r *Router) handleMatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ctx, st := r.startRequest(w, req, "match", "router.match")
	mr, body, err := r.parseRequest(req, w)
	if err != nil {
		r.settle(st, "failed", err, 0, nil)
		writeShardError(w, err)
		return
	}
	st.mr = mr
	bodies, failedShards, errs := r.scatter(ctx, "/match", body, st.reqID)
	if len(failedShards) > 0 {
		if fe := r.failNow(failedShards, errs); fe != nil {
			r.settle(st, "failed", fe, 0, failedShards)
			writeShardError(w, fe)
			return
		}
	}

	out := &MatchResponse{}
	var entries []server.MatchEntry
	stats := &server.MatchStats{}
	haveStats := false
	for s, b := range bodies {
		if b == nil {
			continue
		}
		var sr server.MatchResponse
		if err := json.Unmarshal(b, &sr); err != nil {
			ge := fmt.Errorf("shard %d: malformed response: %v", s, err)
			r.settle(st, "failed", ge, 0, failedShards)
			writeError(w, http.StatusBadGateway, ge.Error())
			return
		}
		for i := range sr.Matches {
			if err := r.translate(s, &sr.Matches[i]); err != nil {
				r.settle(st, "failed", err, 0, failedShards)
				writeError(w, http.StatusBadGateway, err.Error())
				return
			}
		}
		entries = append(entries, sr.Matches...)
		out.Alpha, out.Strategy = sr.Alpha, sr.Strategy
		out.Truncated = out.Truncated || sr.Truncated
		if sr.Stats != nil {
			addStats(stats, sr.Stats)
			haveStats = true
		}
	}
	_, orderName, _ := server.ParseOrder(mr.Order) // validated in parseRequest
	if orderName == "prob" {
		sort.Slice(entries, func(i, j int) bool { return probBetter(&entries[i], &entries[j]) })
	} else {
		sort.Slice(entries, func(i, j int) bool { return emitLess(&entries[i], &entries[j]) })
	}
	r.met.mergeCandidates.Observe(float64(len(entries)))
	if mr.Limit > 0 && len(entries) > mr.Limit {
		entries = entries[:mr.Limit]
		out.Truncated = true
	}
	out.Matches = entries
	if out.Matches == nil {
		out.Matches = []server.MatchEntry{}
	}
	out.NumMatches = len(out.Matches)
	if haveStats {
		out.Stats = stats
	}
	if len(failedShards) > 0 {
		out.Partial = true
		out.ShardsFailed = failedShards
		r.settle(st, "partial", nil, out.NumMatches, failedShards)
	} else {
		r.settle(st, "ok", nil, out.NumMatches, nil)
	}
	writeJSON(w, http.StatusOK, out)
}

// failNow decides whether shard failures fail the request: always under
// RequireAll, when every shard failed, or when a shard rejected the request
// itself (4xx — the other shards' answers would not make it valid).
func (r *Router) failNow(failedShards []int, errs []error) error {
	var client *shardError
	for _, err := range errs {
		var se *shardError
		if errors.As(err, &se) && se.status >= 400 && se.status < 500 {
			client = se
			break
		}
	}
	if client != nil {
		return client
	}
	if r.opt.RequireAll || len(failedShards) == r.manifest.Shards {
		return &shardError{status: http.StatusBadGateway,
			msg: fmt.Sprintf("%d/%d shards failed: %v", len(failedShards), r.manifest.Shards, errs[0])}
	}
	return nil
}

// ShardExplain is one shard's plan in an ExplainResponse.
type ShardExplain struct {
	Shard int `json:"shard"`
	// Explain is the shard's verbatim /explain answer (plan tree + cached
	// flag); plans are per-shard artifacts, so none is synthesized globally.
	Explain json.RawMessage `json:"explain"`
}

// ExplainResponse answers POST /explain at the router: one plan per shard.
type ExplainResponse struct {
	Shards       []ShardExplain `json:"shards"`
	Partial      bool           `json:"partial,omitempty"`
	ShardsFailed []int          `json:"shards_failed,omitempty"`
}

func (r *Router) handleExplain(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ctx, st := r.startRequest(w, req, "explain", "router.explain")
	mr, body, err := r.parseRequest(req, w)
	if err != nil {
		r.settle(st, "failed", err, 0, nil)
		writeShardError(w, err)
		return
	}
	st.mr = mr
	bodies, failedShards, errs := r.scatter(ctx, "/explain", body, st.reqID)
	if len(failedShards) > 0 {
		if fe := r.failNow(failedShards, errs); fe != nil {
			r.settle(st, "failed", fe, 0, failedShards)
			writeShardError(w, fe)
			return
		}
	}
	out := &ExplainResponse{Shards: make([]ShardExplain, 0, len(bodies))}
	for s, b := range bodies {
		if b == nil {
			continue
		}
		out.Shards = append(out.Shards, ShardExplain{Shard: s, Explain: json.RawMessage(b)})
	}
	if len(failedShards) > 0 {
		out.Partial = true
		out.ShardsFailed = failedShards
		r.settle(st, "partial", nil, 0, failedShards)
	} else {
		r.settle(st, "ok", nil, 0, nil)
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthResponse answers the router's own probes.
type HealthResponse struct {
	OK            bool    `json:"ok"`
	Ready         bool    `json:"ready"`
	Shards        int     `json:"shards"`
	ShardsDown    []int   `json:"shards_down,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// handleHealth is the router's readiness probe: ready iff every shard has at
// least one healthy replica — the condition under which a non-partial answer
// is possible.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	resp := &HealthResponse{Shards: r.manifest.Shards, UptimeSeconds: time.Since(r.start).Seconds()}
	for s, reps := range r.replicas {
		up := false
		for _, rep := range reps {
			if rep.healthy.Load() {
				up = true
				break
			}
		}
		if !up {
			resp.ShardsDown = append(resp.ShardsDown, s)
		}
	}
	if len(resp.ShardsDown) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	resp.OK, resp.Ready = true, true
	writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleHealthLive(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, &HealthResponse{OK: true, Ready: true,
		Shards: r.manifest.Shards, UptimeSeconds: time.Since(r.start).Seconds()})
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/match", r.handleMatch)
	mux.HandleFunc("/match/stream", r.handleMatchStream)
	mux.HandleFunc("/explain", r.handleExplain)
	mux.HandleFunc("/healthz", r.handleHealth)
	mux.HandleFunc("/healthz/live", r.handleHealthLive)
	mux.HandleFunc("/debug/trace/", r.handleDebugTrace)
	if !r.opt.DisableMetrics {
		mux.HandleFunc("/metrics", r.handleMetrics)
		mux.HandleFunc("/metrics/cluster", r.handleMetricsCluster)
	}
	return mux
}

// handleDebugTrace serves the router's half of a trace waterfall from the
// ring buffer — same response shape as the shards' endpoint, so a client
// can fetch /debug/trace/{id} from the router and every shard and merge.
func (r *Router) handleDebugTrace(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if r.opt.Tracer == nil {
		writeError(w, http.StatusNotFound, "span tracing disabled (start with -trace-sample > 0)")
		return
	}
	id := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusBadRequest, "want /debug/trace/{trace-id}")
		return
	}
	spans := r.opt.Tracer.Collect(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no spans recorded for trace "+id)
		return
	}
	writeJSON(w, http.StatusOK, &server.TraceResponse{TraceID: id, Spans: spans})
}

func (r *Router) finish(endpoint string, start time.Time, outcome string) {
	r.met.requests.WithLabelValues(endpoint, outcome).Inc()
	r.met.latency.WithLabelValue(endpoint).Observe(time.Since(start).Seconds())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeShardError(w http.ResponseWriter, err error) {
	var se *shardError
	if errors.As(err, &se) && se.status != 0 {
		writeError(w, se.status, se.msg)
		return
	}
	writeError(w, http.StatusBadGateway, err.Error())
}
