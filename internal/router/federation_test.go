package router

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getRaw(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestMetricsCluster scrapes the federated page: the router's own families
// lead, every replica's families follow with shard/replica labels injected,
// and a dead replica degrades to peg_cluster_scrape_up 0 instead of failing
// the scrape.
func TestMetricsCluster(t *testing.T) {
	d := buildSynth(t)
	rt, backends := openCluster(t, d, 2, Options{})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)

	// Traffic so the shard counters are non-trivial.
	if resp, _ := postMatch(t, routed.URL, map[string]any{"query": testQueries[0], "alpha": 0.05}); resp.StatusCode != 200 {
		t.Fatalf("match: HTTP %d", resp.StatusCode)
	}

	resp, raw := getRaw(t, routed.URL+"/metrics/cluster")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics/cluster: HTTP %d", resp.StatusCode)
	}
	page := string(raw)
	for _, want := range []string{
		"peg_router_requests_total",                            // the router's own families lead
		`peg_cluster_scrape_up{shard="0",replica="` + backends[0].URL + `"} 1`,
		`peg_cluster_scrape_up{shard="1",replica="` + backends[1].URL + `"} 1`,
		`peg_requests_total{shard="0",replica="` + backends[0].URL + `",endpoint="match",outcome="ok"} 1`,
		`peg_requests_total{shard="1",replica="` + backends[1].URL + `",endpoint="match",outcome="ok"} 1`,
		`peg_index_entries{shard="0"`,                          // gauges federate too
		"# TYPE peg_request_duration_seconds histogram",        // type survives the round trip
		`peg_request_duration_seconds_bucket{shard="0",replica=`, // histogram series re-labeled
		"peg_trace_spans_recorded_total 0",                     // router's trace families render zeros untraced
	} {
		if !strings.Contains(page, want) {
			t.Errorf("federated page missing %q", want)
		}
	}
	if n := strings.Count(page, "# TYPE peg_requests_total counter"); n != 1 {
		t.Errorf("family peg_requests_total announced %d times, want one merged family", n)
	}

	// Kill shard 1's only replica: the scrape still answers, reporting the
	// replica down and keeping shard 0's families.
	backends[1].Close()
	rt.pollHealth()
	resp, raw = getRaw(t, routed.URL+"/metrics/cluster")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics/cluster after kill: HTTP %d", resp.StatusCode)
	}
	page = string(raw)
	if !strings.Contains(page, `peg_requests_total{shard="0"`) {
		t.Error("surviving shard's families missing after a replica death")
	}
	if strings.Contains(page, `peg_requests_total{shard="1"`) {
		t.Error("dead replica's stale families still on the page")
	}
}
