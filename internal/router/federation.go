package router

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// federationTimeout caps one cluster scrape: every replica is polled
// concurrently, so the page costs one slowest-replica round trip.
const federationTimeout = 5 * time.Second

// scrapedFamily is one metric family reassembled from the backends' text
// pages, with every sample re-labeled by its origin.
type scrapedFamily struct {
	name, help, typ string
	samples         []string
}

// parseFamilies runs a stateful parse over one replica's Prometheus text
// page, injecting shard/replica as leading labels on every sample. The
// family a sample belongs to is the one announced by the preceding
// # HELP/# TYPE headers (histogram _bucket/_sum/_count lines carry the base
// family's name plus a suffix); a bare sample with no header opens an
// untyped family of its own name.
func parseFamilies(page []byte, shard int, replicaURL string, out map[string]*scrapedFamily, order *[]string) {
	inject := fmt.Sprintf("shard=%q,replica=%q", strconv.Itoa(shard), replicaURL)
	family := func(name string) *scrapedFamily {
		f, ok := out[name]
		if !ok {
			f = &scrapedFamily{name: name, typ: "untyped", help: "federated from cluster replicas"}
			out[name] = f
			*order = append(*order, name)
		}
		return f
	}
	var cur string
	sc := bufio.NewScanner(bytes.NewReader(page))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				cur = fields[2]
				f := family(cur)
				if len(fields) == 4 && f.help == "federated from cluster replicas" {
					f.help = fields[3]
				}
			case "TYPE":
				cur = fields[2]
				if len(fields) == 4 {
					family(cur).typ = fields[3]
				}
			}
			continue
		}
		// Sample line: name[{labels}] value [timestamp].
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name == "" {
			continue
		}
		fam := name
		if cur == "" || (name != cur && !strings.HasPrefix(name, cur+"_")) {
			cur = name
		} else {
			fam = cur
		}
		var sample string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			sample = line[:i+1] + inject + "," + line[i+1:]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			sample = line[:i] + "{" + inject + "}" + line[i:]
		} else {
			continue // no value; not a well-formed sample
		}
		family(fam).samples = append(family(fam).samples, sample+"\n")
	}
}

// handleMetricsCluster serves GET /metrics/cluster: the router's own
// families followed by every healthy replica's /metrics page, merged by
// family with shard="N",replica="URL" labels injected on each sample — a
// single scrape target for the whole serving tier. Replicas that fail to
// answer are reported through peg_cluster_scrape_up{shard,replica} = 0
// rather than failing the page.
func (r *Router) handleMetricsCluster(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), federationTimeout)
	defer cancel()

	type target struct {
		shard int
		url   string
	}
	var targets []target
	for s, reps := range r.replicas {
		for _, rep := range reps {
			if rep.healthy.Load() {
				targets = append(targets, target{s, rep.url})
			}
		}
	}
	pages := make([][]byte, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url+"/metrics", nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := r.opt.Client.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				errs[i] = fmt.Errorf("HTTP %d", resp.StatusCode)
				return
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			if err != nil {
				errs[i] = err
				return
			}
			pages[i] = b
		}(i, t)
	}
	wg.Wait()

	// Merge in deterministic (shard, replica) order so the page is stable
	// across scrapes modulo sample values.
	families := make(map[string]*scrapedFamily)
	var order []string
	up := &scrapedFamily{name: "peg_cluster_scrape_up", typ: "gauge",
		help: "1 if the replica's /metrics answered this cluster scrape."}
	families[up.name] = up
	order = append(order, up.name)
	for i, t := range targets {
		v := 1
		if errs[i] != nil {
			v = 0
		}
		up.samples = append(up.samples,
			fmt.Sprintf("peg_cluster_scrape_up{shard=%q,replica=%q} %d\n", strconv.Itoa(t.shard), t.url, v))
		if errs[i] != nil {
			continue
		}
		parseFamilies(pages[i], t.shard, t.url, families, &order)
	}
	sort.Strings(order[1:]) // scrape_up leads; backend families alphabetical

	// Render: the router's own registry first, then the federated families
	// through a per-scrape registry of text collectors — same renderer, so
	// escaping and header layout match a native page.
	var buf bytes.Buffer
	r.met.reg.Render(&buf)
	fed := metrics.NewRegistry()
	for _, name := range order {
		f := families[name]
		fed.MustRegister(metrics.NewTextFamily(f.name, f.help, f.typ, f.samples))
	}
	fed.Render(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
