package router

import (
	"bytes"
	"fmt"
	"net/http"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
)

// routerMetrics instruments the scatter-gather path through the shared
// metrics registry: per-endpoint request outcomes and latency, per-shard
// call outcomes, latency and hedge counts, merge fan-in, and scrape-time
// replica health.
type routerMetrics struct {
	reg *metrics.Registry

	requests      *metrics.CounterVec   // peg_router_requests_total{endpoint,outcome}
	latency       *metrics.HistogramVec // peg_router_request_duration_seconds{endpoint}
	shardRequests *metrics.CounterVec   // peg_router_shard_requests_total{shard,outcome}
	shardLatency  *metrics.HistogramVec // peg_router_shard_latency_seconds{shard}
	hedges        *metrics.CounterVec   // peg_router_hedges_total{shard}
	// mergeCandidates is the buffered-merge fan-in: how many translated
	// matches entered one /match merge across all shards.
	mergeCandidates *metrics.Histogram
}

func newRouterMetrics(r *Router) *routerMetrics {
	m := &routerMetrics{
		reg: metrics.NewRegistry(),
		requests: metrics.NewCounterVec("peg_router_requests_total",
			"Routed requests by endpoint and terminal outcome (ok, partial, failed, canceled).",
			"endpoint", "outcome"),
		latency: metrics.NewHistogramVec("peg_router_request_duration_seconds",
			"End-to-end routed request latency by endpoint.", "endpoint",
			metrics.ExpBuckets(1e-4, 4, 11)),
		shardRequests: metrics.NewCounterVec("peg_router_shard_requests_total",
			"Per-shard backend calls by outcome (ok, error, or HTTP status).",
			"shard", "outcome"),
		shardLatency: metrics.NewHistogramVec("peg_router_shard_latency_seconds",
			"Per-shard backend call latency (drives the adaptive hedge delay).",
			"shard", metrics.ExpBuckets(1e-4, 4, 11)),
		hedges: metrics.NewCounterVec("peg_router_hedges_total",
			"Hedged backend calls by shard (second replica raced after the hedge delay).",
			"shard"),
		mergeCandidates: metrics.NewHistogram("peg_router_merge_candidates",
			"Matches entering one buffered merge, summed across shards.",
			metrics.ExpBuckets(1, 4, 12)),
	}
	m.reg.MustRegister(
		m.requests, m.latency, m.shardRequests, m.shardLatency, m.hedges, m.mergeCandidates,

		metrics.NewGaugeFunc("peg_router_shards",
			"Shards in the served manifest.", func() float64 { return float64(r.manifest.Shards) }),
		metrics.NewMultiGaugeFunc("peg_router_shard_healthy_replicas",
			"Healthy replicas per shard (0 = the shard is down and answers go partial).",
			"shard", func(emit func(string, float64)) {
				for s, reps := range r.replicas {
					n := 0
					for _, rep := range reps {
						if rep.healthy.Load() {
							n++
						}
					}
					emit(fmt.Sprint(s), float64(n))
				}
			}),
		metrics.NewMultiGaugeFunc("peg_router_shard_inflight",
			"In-flight backend calls per shard, summed over replicas.",
			"shard", func(emit func(string, float64)) {
				for s, reps := range r.replicas {
					var n int64
					for _, rep := range reps {
						n += rep.inflight.Load()
					}
					emit(fmt.Sprint(s), float64(n))
				}
			}),
	)
	m.reg.MustRegister(server.TraceCollectors(func() trace.Stats { return r.opt.Tracer.Stats() })...)
	return m
}

// handleMetrics serves GET /metrics in Prometheus text exposition format,
// rendered into a buffer first so a slow scraper cannot observe a torn
// write.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var buf bytes.Buffer
	r.met.reg.Render(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
