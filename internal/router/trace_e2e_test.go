package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/pathindex"
	"repro/internal/refgraph"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trace"
)

// openTracedCluster is openCluster with span tracing on every tier: each
// shard server gets its own always-sampling tracer, and rig may rewrite the
// replica lists (prepending dead or slow replicas) before the router is
// built — the lowest-index replica of a shard is the primary pick, so a
// prepended bad replica deterministically forces failover or hedging.
func openTracedCluster(t *testing.T, d *refgraph.PGD, shards int, opt Options,
	rig func(replicas [][]string) [][]string) (*Router, []*trace.Tracer) {
	t.Helper()
	dir := t.TempDir()
	m, err := shard.Build(context.Background(), d, dir, shard.Options{
		Shards: shards,
		Index:  pathindex.Options{MaxLen: testMaxLen, Beta: 0.01, Gamma: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	tracers := make([]*trace.Tracer, shards)
	replicas := make([][]string, shards)
	for s, e := range m.Entries {
		f, err := os.Open(filepath.Join(dir, e.PGD))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := refgraph.Load(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		g, err := entity.Build(sd, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pathindex.Open(filepath.Join(dir, e.IndexDir), g)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		tracers[s] = trace.New(trace.Config{Service: fmt.Sprintf("shard-%d", s), Sample: 1})
		hs := httptest.NewServer(server.New(ix, server.Options{Workers: 2, Tracer: tracers[s]}).Handler())
		t.Cleanup(hs.Close)
		replicas[s] = []string{hs.URL}
	}
	if rig != nil {
		replicas = rig(replicas)
	}
	opt.Replicas = replicas
	if opt.HealthEvery == 0 {
		opt.HealthEvery = -1
	}
	rt, err := New(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, tracers
}

// deadReplicaURL returns a URL that refuses connections: a started-then-
// closed test server, so the port was really bound and is really dead.
func deadReplicaURL(t *testing.T) string {
	t.Helper()
	hs := httptest.NewServer(http.NotFoundHandler())
	hs.Close()
	return hs.URL
}

// collectTrace gathers one trace's spans across the router and every shard
// tracer, polling until cond holds on the union (late spans — the abandoned
// side of a hedge — land after the response).
func collectTrace(t *testing.T, id string, rt *Router, shardTracers []*trace.Tracer,
	cond func(spans []trace.SpanData) error) []trace.SpanData {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var spans []trace.SpanData
	var err error
	for {
		spans = rt.opt.Tracer.Collect(id)
		for _, tr := range shardTracers {
			spans = append(spans, tr.Collect(id)...)
		}
		if err = cond(spans); err == nil {
			return spans
		}
		if time.Now().After(deadline) {
			for _, sp := range spans {
				t.Logf("span %s parent=%s service=%s name=%s attrs=%v", sp.SpanID, sp.ParentID, sp.Service, sp.Name, sp.Attrs)
			}
			t.Fatalf("trace %s never converged: %v", id, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spansBy(spans []trace.SpanData, pred func(trace.SpanData) bool) []trace.SpanData {
	var out []trace.SpanData
	for _, sp := range spans {
		if pred(sp) {
			out = append(out, sp)
		}
	}
	return out
}

// TestTraceEndToEnd is the distributed-tracing property test: one traced
// /match through a 2-shard cluster rigged for both failure modes — shard 0's
// primary replica is dead (forced failover), shard 1's primary is slow
// (forced hedge) — yields a single trace id spanning the client's
// traceparent, the router root, every shard attempt with its cause, and the
// shard-side request + executor stage spans, with well-formed parent links.
func TestTraceEndToEnd(t *testing.T) {
	d := buildSynth(t)
	var lines bytes.Buffer
	rtTracer := trace.New(trace.Config{Service: "pegrouter", Sample: 1})
	var slow *httptest.Server
	rt, shardTracers := openTracedCluster(t, d, 2, Options{
		Tracer:      rtTracer,
		TraceWriter: &lines,
		TraceAll:    true,
		HedgeAfter:  10 * time.Millisecond,
	}, func(replicas [][]string) [][]string {
		replicas[0] = append([]string{deadReplicaURL(t)}, replicas[0]...)
		// The slow primary outlives any plausible request: the hedge fires at
		// 10ms, the live replica answers, and the abandoned attempt's span
		// settles when the shard call context is canceled.
		slow = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
		}))
		t.Cleanup(func() { slow.CloseClientConnections(); slow.Close() })
		replicas[1] = append([]string{slow.URL}, replicas[1]...)
		return replicas
	})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)

	const tid = "0123456789abcdef0123456789abcdef"
	const clientSpan = "00f067aa0ba902b7"
	body, _ := json.Marshal(map[string]any{"query": testQueries[0], "alpha": 0.05})
	req, err := http.NewRequest(http.MethodPost, routed.URL+"/match", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "00-"+tid+"-"+clientSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Partial {
		t.Fatalf("rigged cluster should still answer fully: HTTP %d partial=%v", resp.StatusCode, out.Partial)
	}

	spans := collectTrace(t, tid, rt, shardTracers, func(spans []trace.SpanData) error {
		want := map[string]int{"primary": 0, "failover": 0, "hedge": 0}
		settled := 0
		for _, sp := range spans {
			if sp.Name == "shard.attempt" {
				want[sp.Attrs["cause"]]++
				if sp.Attrs["outcome"] != "" {
					settled++
				}
			}
		}
		// Two primaries (one per shard), shard 0's failover, shard 1's hedge —
		// all four settled, including the abandoned slow primary.
		if want["primary"] != 2 || want["failover"] != 1 || want["hedge"] != 1 || settled != 4 {
			return fmt.Errorf("attempt causes %v, %d settled", want, settled)
		}
		return nil
	})

	byID := map[string]trace.SpanData{}
	for _, sp := range spans {
		if sp.TraceID != tid {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, tid)
		}
		byID[sp.SpanID] = sp
	}
	roots := spansBy(spans, func(sp trace.SpanData) bool { return sp.Name == "router.match" })
	if len(roots) != 1 || roots[0].ParentID != clientSpan || roots[0].Service != "pegrouter" {
		t.Fatalf("want one router.match root parented to the client span, got %+v", roots)
	}
	root := roots[0]

	attempts := map[string]trace.SpanData{}
	for _, sp := range spansBy(spans, func(sp trace.SpanData) bool { return sp.Name == "shard.attempt" }) {
		if sp.ParentID != root.SpanID {
			t.Fatalf("attempt span %v not parented to the router root", sp.Attrs)
		}
		attempts[sp.SpanID] = sp
	}

	serves := spansBy(spans, func(sp trace.SpanData) bool { return sp.Name == "serve.match" })
	if len(serves) != 2 {
		t.Fatalf("want one serve.match per shard, got %d", len(serves))
	}
	for _, sp := range serves {
		parent, ok := attempts[sp.ParentID]
		if !ok {
			t.Fatalf("serve.match on %s parented to %s, not a router attempt", sp.Service, sp.ParentID)
		}
		if parent.Attrs["outcome"] != "ok" {
			t.Fatalf("serve.match descends from a non-ok attempt: %v", parent.Attrs)
		}
	}

	// Executor stage spans sit inside their shard's request span, both by
	// parent link and by timeline.
	stages := spansBy(spans, func(sp trace.SpanData) bool { return strings.HasPrefix(sp.Name, "stage.") })
	if len(stages) == 0 {
		t.Fatal("no executor stage spans recorded")
	}
	const slopNano = int64(2e6)
	for _, sg := range stages {
		req, ok := byID[sg.ParentID]
		if !ok || req.Name != "serve.match" {
			t.Fatalf("stage span %s parented to %q, want its serve.match", sg.Name, req.Name)
		}
		if sg.StartNano < req.StartNano-slopNano ||
			sg.StartNano+int64(sg.Micros*1e3) > req.StartNano+int64(req.Micros*1e3)+slopNano {
			t.Fatalf("stage %s [%d +%.0fµs] outside request span [%d +%.0fµs]",
				sg.Name, sg.StartNano, sg.Micros, req.StartNano, req.Micros)
		}
	}

	// Every parent link resolves inside the collected union except the
	// client's own span, which no process recorded.
	for _, sp := range spans {
		if sp.ParentID == "" || sp.ParentID == clientSpan {
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Fatalf("span %s/%s has dangling parent %s", sp.Service, sp.Name, sp.ParentID)
		}
	}

	// GET /debug/trace/{id} on the router serves its half of the waterfall.
	dresp, err := http.Get(routed.URL + "/debug/trace/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	var tr server.TraceResponse
	if err := json.NewDecoder(dresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || tr.TraceID != tid || len(tr.Spans) < 5 {
		t.Fatalf("debug/trace: HTTP %d, %d spans for %q", dresp.StatusCode, len(tr.Spans), tr.TraceID)
	}

	// NDJSON request-line parity: the router wrote one line for this request
	// carrying the same trace id and the pegserve event shape.
	var ev routerTraceEvent
	found := false
	sc := bufio.NewScanner(bytes.NewReader(lines.Bytes()))
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &ev); err == nil && ev.Endpoint == "match" {
			found = true
			break
		}
	}
	if !found || ev.TraceID != tid || ev.Outcome != "ok" || ev.Query == "" || ev.DurationMicros <= 0 {
		t.Fatalf("router trace line missing or malformed: %+v", ev)
	}
}

// TestTraceStreamEndToEnd covers the streaming path: a traced /match/stream
// with shard 0's primary replica dead still carries one trace id across the
// router root, the failover attempt, and the shard-side stream spans.
func TestTraceStreamEndToEnd(t *testing.T) {
	d := buildSynth(t)
	rtTracer := trace.New(trace.Config{Service: "pegrouter", Sample: 1})
	rt, shardTracers := openTracedCluster(t, d, 2, Options{Tracer: rtTracer},
		func(replicas [][]string) [][]string {
			replicas[0] = append([]string{deadReplicaURL(t)}, replicas[0]...)
			return replicas
		})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)

	const tid = "aaaabbbbccccdddd0000111122223333"
	const clientSpan = "0102030405060708"
	body, _ := json.Marshal(map[string]any{"query": testQueries[0], "alpha": 0.05})
	req, err := http.NewRequest(http.MethodPost, routed.URL+"/match/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "00-"+tid+"-"+clientSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line: %v", err)
		}
		if ev.Error != "" {
			t.Fatalf("stream error: %s", ev.Error)
		}
		if ev.Done != nil {
			sawDone = true
			if ev.Done.Partial {
				t.Fatalf("failover should prevent a partial answer: %+v", ev.Done)
			}
		}
	}
	resp.Body.Close()
	if !sawDone {
		t.Fatal("stream ended without a done line")
	}

	spans := collectTrace(t, tid, rt, shardTracers, func(spans []trace.SpanData) error {
		names := map[string]int{}
		for _, sp := range spans {
			names[sp.Name]++
		}
		if names["router.stream"] != 1 || names["shard.stream"] != 2 || names["serve.stream"] != 2 {
			return fmt.Errorf("span census %v", names)
		}
		return nil
	})
	byID := map[string]trace.SpanData{}
	for _, sp := range spans {
		if sp.TraceID != tid {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, tid)
		}
		byID[sp.SpanID] = sp
	}
	var root trace.SpanData
	causes := map[string]int{}
	for _, sp := range spans {
		switch sp.Name {
		case "router.stream":
			root = sp
		case "shard.attempt":
			causes[sp.Attrs["cause"]]++
			if sp.Attrs["cause"] == "failover" && sp.Attrs["outcome"] != "ok" {
				t.Fatalf("failover attempt did not succeed: %v", sp.Attrs)
			}
		}
	}
	if root.ParentID != clientSpan {
		t.Fatalf("stream root parented to %s, want client span %s", root.ParentID, clientSpan)
	}
	if causes["primary"] != 2 || causes["failover"] != 1 {
		t.Fatalf("attempt causes %v, want 2 primaries and 1 failover", causes)
	}
	for _, sp := range spans {
		if sp.Name != "shard.stream" {
			continue
		}
		if sp.ParentID != root.SpanID {
			t.Fatalf("shard.stream parented to %s, want the stream root", sp.ParentID)
		}
	}
	for _, sp := range spans {
		if sp.Name == "serve.stream" {
			parent, ok := byID[sp.ParentID]
			if !ok || parent.Name != "shard.attempt" {
				t.Fatalf("serve.stream on %s parented to %q, want a shard.attempt", sp.Service, parent.Name)
			}
		}
	}
}
