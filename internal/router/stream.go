package router

import (
	"bufio"
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

// StreamDone is the terminal NDJSON line of a routed /match/stream: the
// single-node done summary (stats summed across shards) plus the
// partial-failure report.
type StreamDone struct {
	server.StreamDone
	Partial      bool  `json:"partial,omitempty"`
	ShardsFailed []int `json:"shards_failed,omitempty"`
}

// streamEvent mirrors server.StreamEvent with the router's done type.
type streamEvent struct {
	Match *server.MatchEntry `json:"match,omitempty"`
	Done  *StreamDone        `json:"done,omitempty"`
	Error string             `json:"error,omitempty"`
}

// shardStream is one shard's live /match/stream: resp feeds pump, which
// fills out and records the terminal done line or error.
type shardStream struct {
	s    int
	resp *http.Response
	ch   chan server.MatchEntry // per-shard channel (probability merge only)
	done *server.StreamDone
	err  error
}

// openShardStream starts one shard's /match/stream with pre-first-byte
// failover: a replica that fails before producing any line is retried on the
// next untried replica. Once a line has been forwarded the stream cannot be
// restarted (a retry would replay matches), so later failures surface as the
// stream's error instead.
func (r *Router) openShardStream(ctx context.Context, s int, body []byte, reqID string) (*http.Response, error) {
	tried := make(map[*replica]bool)
	var lastErr error
	cause := "primary"
	for {
		rep := r.pick(s, tried)
		if rep == nil {
			if lastErr == nil {
				lastErr = &shardError{msg: fmt.Sprintf("shard %d: no replicas", s)}
			}
			return nil, lastErr
		}
		tried[rep] = true
		// The attempt span covers open-to-first-byte: the stream body's
		// lifetime is the pump's "shard.stream" span.
		asp := r.startAttempt(ctx, "shard.attempt", s, rep, cause)
		cause = "failover"
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/match/stream", bytes.NewReader(body))
		if err != nil {
			e := &shardError{msg: err.Error()}
			endAttempt(asp, "error", e)
			return nil, e
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.RequestIDHeader, reqID)
		propagate(ctx, asp, req.Header)
		resp, err := r.opt.Client.Do(req)
		shardLabel := fmt.Sprint(s)
		if err != nil {
			r.met.shardRequests.WithLabelValues(shardLabel, "error").Inc()
			lastErr = &shardError{msg: fmt.Sprintf("shard %d: %v", s, err)}
			endAttempt(asp, "error", lastErr)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			r.met.shardRequests.WithLabelValues(shardLabel, fmt.Sprint(resp.StatusCode)).Inc()
			var je struct {
				Error string `json:"error"`
			}
			msg := fmt.Sprintf("shard %d: HTTP %d", s, resp.StatusCode)
			if b, rerr := readSmall(resp); rerr == nil && json.Unmarshal(b, &je) == nil && je.Error != "" {
				msg = fmt.Sprintf("shard %d: %s", s, je.Error)
			}
			resp.Body.Close()
			se := &shardError{status: resp.StatusCode, msg: msg}
			endAttempt(asp, fmt.Sprint(se.status), se)
			if se.status >= 400 && se.status < 500 {
				return nil, se // the request's own fault; no replica will differ
			}
			lastErr = se
			continue
		}
		r.met.shardRequests.WithLabelValues(shardLabel, "ok").Inc()
		endAttempt(asp, "ok", nil)
		return resp, nil
	}
}

func readSmall(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(http.MaxBytesReader(nil, resp.Body, 1<<20))
	return buf.Bytes(), err
}

// pump decodes one shard's stream, translating each match into global ids
// and forwarding it on out (without closing it; the caller owns out's
// lifecycle). The bounded out channel is the backpressure path: when the
// client reads slowly the merge loop stops draining, the channel fills,
// this goroutine blocks, and the shard's HTTP response stalls — no
// unbounded buffering anywhere.
func (r *Router) pump(ctx context.Context, ss *shardStream, out chan<- server.MatchEntry) {
	defer ss.resp.Body.Close()
	if r.opt.Tracer != nil && trace.SpanFromContext(ctx).Sampled() {
		pstart := time.Now()
		defer func() {
			attrs := map[string]string{"shard": strconv.Itoa(ss.s)}
			if ss.err != nil {
				attrs["error"] = ss.err.Error()
			}
			r.opt.Tracer.RecordSpan(ctx, "shard.stream", pstart, time.Since(pstart), attrs)
		}()
	}
	sc := bufio.NewScanner(ss.resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ev server.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			ss.err = fmt.Errorf("shard %d: malformed stream line: %v", ss.s, err)
			return
		}
		switch {
		case ev.Match != nil:
			if err := r.translate(ss.s, ev.Match); err != nil {
				ss.err = err
				return
			}
			select {
			case out <- *ev.Match:
			case <-ctx.Done():
				ss.err = ctx.Err()
				return
			}
		case ev.Done != nil:
			ss.done = ev.Done
			return
		case ev.Error != "":
			ss.err = fmt.Errorf("shard %d: %s", ss.s, ev.Error)
			return
		}
	}
	// Abnormal end: a canceled merge (limit reached) or a shard that died
	// mid-stream without a done line.
	if err := ctx.Err(); err != nil {
		ss.err = err
		return
	}
	if err := sc.Err(); err != nil {
		ss.err = fmt.Errorf("shard %d: %w", ss.s, err)
		return
	}
	ss.err = fmt.Errorf("shard %d: stream ended without a done line", ss.s)
}

// handleMatchStream scatters one streaming match to every shard and merges
// the NDJSON feeds: emission order interleaves lines as shards produce them
// (lowest first-line latency, arrival order deliberately nondeterministic);
// probability order runs a bounded k-way heap merge over the per-shard
// sorted streams, which is exact because each shard stream is sorted under
// the same total order and the id translation is monotone.
func (r *Router) handleMatchStream(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	rctx, st := r.startRequest(w, req, "stream", "router.stream")
	mr, body, err := r.parseRequest(req, w)
	if err != nil {
		r.settle(st, "failed", err, 0, nil)
		writeShardError(w, err)
		return
	}
	st.mr = mr
	_, orderName, _ := server.ParseOrder(mr.Order)

	ctx, cancel := context.WithTimeout(rctx, r.opt.ShardTimeout)
	defer cancel()

	// Open every shard stream before the first byte goes out, so an
	// opening-time failure can still answer with a real HTTP status.
	n := r.manifest.Shards
	streams := make([]*shardStream, n)
	var openFailed []int
	var openErrs []error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ss := &shardStream{s: s}
			resp, err := r.openShardStream(ctx, s, body, st.reqID)
			if err != nil {
				ss.err = err
				mu.Lock()
				openFailed = append(openFailed, s)
				openErrs = append(openErrs, err)
				mu.Unlock()
			} else {
				ss.resp = resp
			}
			streams[s] = ss
		}(s)
	}
	wg.Wait()
	sort.Ints(openFailed)
	if len(openFailed) > 0 {
		if fe := r.failNow(openFailed, openErrs); fe != nil {
			for _, ss := range streams {
				if ss.resp != nil {
					ss.resp.Body.Close()
				}
			}
			r.settle(st, "failed", fe, 0, openFailed)
			writeShardError(w, fe)
			return
		}
	}
	live := make([]*shardStream, 0, n)
	for _, ss := range streams {
		if ss.resp != nil {
			live = append(live, ss)
		}
	}

	// Bound every event write by the stream deadline, mirroring the shard
	// handler: a client that stops reading fails its writes instead of
	// pinning the handler and all shard connections.
	if dl, ok := ctx.Deadline(); ok {
		_ = http.NewResponseController(w).SetWriteDeadline(dl)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitted := 0
	clientGone := false
	emit := func(e *server.MatchEntry) bool {
		if err := enc.Encode(&streamEvent{Match: e}); err != nil {
			clientGone = true
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		emitted++
		return mr.Limit <= 0 || emitted < mr.Limit
	}

	// Start the pumps and merge. Both merges stop early when emit returns
	// false (limit reached or client gone); cancel then unblocks every pump
	// and the drain loop below retires them.
	var pumps sync.WaitGroup
	stopped := false
	if orderName == "prob" {
		for _, ss := range live {
			ss.ch = make(chan server.MatchEntry, 16)
			pumps.Add(1)
			go func(ss *shardStream) {
				defer pumps.Done()
				defer close(ss.ch)
				r.pump(ctx, ss, ss.ch)
			}(ss)
		}
		stopped = mergeProb(live, emit)
		if stopped {
			cancel()
		}
		for _, ss := range live {
			for range ss.ch {
			}
		}
	} else {
		merged := make(chan server.MatchEntry, 64)
		for _, ss := range live {
			pumps.Add(1)
			go func(ss *shardStream) {
				defer pumps.Done()
				r.pump(ctx, ss, merged)
			}(ss)
		}
		go func() { pumps.Wait(); close(merged) }()
		for e := range merged {
			if !emit(&e) {
				stopped = true
				cancel()
				break
			}
		}
		for range merged {
		}
	}
	pumps.Wait()
	limitCut := stopped && !clientGone
	if clientGone {
		r.settle(st, "canceled", nil, emitted, nil)
		return
	}

	// Settle: every pump has returned, so done/err are stable.
	done := &StreamDone{}
	done.NumMatches = emitted
	done.Truncated = limitCut
	haveStats := false
	stats := &server.MatchStats{}
	for _, ss := range streams {
		switch {
		case ss.done != nil:
			done.Alpha, done.Strategy = ss.done.Alpha, ss.done.Strategy
			done.Truncated = done.Truncated || ss.done.Truncated
			if ss.done.Stats != nil {
				addStats(stats, ss.done.Stats)
				haveStats = true
			}
		case limitCut && errors.Is(ss.err, context.Canceled):
			// The router's own limit cancellation, not a shard failure.
		default:
			done.ShardsFailed = append(done.ShardsFailed, ss.s)
		}
	}
	sort.Ints(done.ShardsFailed)
	if haveStats {
		done.Stats = stats
	}
	if len(done.ShardsFailed) > 0 {
		if r.opt.RequireAll {
			// Mid-stream failure under RequireAll: the answer is incomplete
			// and must not masquerade as success — terminal error line.
			ferr := fmt.Errorf("%d/%d shards failed mid-stream", len(done.ShardsFailed), n)
			_ = enc.Encode(&streamEvent{Error: ferr.Error()})
			r.settle(st, "failed", ferr, emitted, done.ShardsFailed)
			return
		}
		done.Partial = true
		r.settle(st, "partial", nil, emitted, done.ShardsFailed)
	} else {
		r.settle(st, "ok", nil, emitted, nil)
	}
	_ = enc.Encode(&streamEvent{Done: done})
}

// entryHead is one shard's current head in the k-way probability merge.
type entryHead struct {
	e  server.MatchEntry
	ss *shardStream
}

type entryHeap []entryHead

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return probBetter(&h[i].e, &h[j].e) }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)        { *h = append(*h, x.(entryHead)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeProb is the bounded k-way merge over per-shard probability-sorted
// streams: the heap holds one head per live shard, so router memory is
// O(shards) regardless of result size. Returns true when emit stopped the
// merge early.
func mergeProb(live []*shardStream, emit func(*server.MatchEntry) bool) bool {
	h := make(entryHeap, 0, len(live))
	for _, ss := range live {
		if e, ok := <-ss.ch; ok {
			h = append(h, entryHead{e, ss})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		head := h[0]
		if !emit(&head.e) {
			return true
		}
		if e, ok := <-head.ss.ch; ok {
			h[0] = entryHead{e, head.ss}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return false
}
