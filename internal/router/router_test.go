package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/entity"
	"repro/internal/gen"
	"repro/internal/pathindex"
	"repro/internal/refgraph"
	"repro/internal/server"
	"repro/internal/shard"
)

const testMaxLen = 2

func buildSynth(t *testing.T) *refgraph.PGD {
	t.Helper()
	d, err := gen.Synthetic(gen.SynthOptions{
		Refs:     300,
		Groups:   9,
		Clusters: 4,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func openServer(t *testing.T, d *refgraph.PGD) *httptest.Server {
	t.Helper()
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pathindex.Build(context.Background(), g, pathindex.Options{
		MaxLen: testMaxLen, Beta: 0.01, Gamma: 0.05, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	srv := server.New(ix, server.Options{Workers: 2})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// openCluster runs the full offline pipeline and brings up one in-process
// server per shard plus a router over them.
func openCluster(t *testing.T, d *refgraph.PGD, shards int, opt Options) (*Router, []*httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	m, err := shard.Build(context.Background(), d, dir, shard.Options{
		Shards: shards,
		Index:  pathindex.Options{MaxLen: testMaxLen, Beta: 0.01, Gamma: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]*httptest.Server, shards)
	replicas := make([][]string, shards)
	for s, e := range m.Entries {
		f, err := os.Open(filepath.Join(dir, e.PGD))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := refgraph.Load(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		g, err := entity.Build(sd, entity.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := pathindex.Open(filepath.Join(dir, e.IndexDir), g)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		hs := httptest.NewServer(server.New(ix, server.Options{Workers: 2}).Handler())
		t.Cleanup(hs.Close)
		backends[s] = hs
		replicas[s] = []string{hs.URL}
	}
	opt.Replicas = replicas
	if opt.HealthEvery == 0 {
		opt.HealthEvery = -1 // tests drive pollHealth explicitly
	}
	rt, err := New(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, backends
}

func postMatch(t *testing.T, url string, body map[string]any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/match", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func matchesOf(t *testing.T, raw []byte) ([]server.MatchEntry, server.MatchResponse) {
	t.Helper()
	var mr server.MatchResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatalf("decode response: %v\n%s", err, raw)
	}
	return mr.Matches, mr
}

func streamMatches(t *testing.T, url string, body map[string]any) ([]server.MatchEntry, *StreamDone) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/match/stream", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("stream: HTTP %d: %s", resp.StatusCode, buf.String())
	}
	var ms []server.MatchEntry
	var done *StreamDone
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line: %v", err)
		}
		switch {
		case ev.Match != nil:
			ms = append(ms, *ev.Match)
		case ev.Done != nil:
			done = ev.Done
		case ev.Error != "":
			t.Fatalf("stream error: %s", ev.Error)
		}
	}
	if done == nil {
		t.Fatal("stream ended without a done line")
	}
	return ms, done
}

var testQueries = []string{
	"node A l0\nnode B l1\nedge A B",
	"node A l2\nnode B l3\nedge A B",
	"node A l0\nnode B l1\nnode C l2\nedge A B\nedge B C",
}

// TestRouterMatchesSingleNode is the central lossless-partition property:
// over 2 and 3 shards, both decomposition strategies, collect and top-K and
// both stream orders, the routed answer is byte-identical (mapping, Pr,
// Prle, Prn, order) to the single-node answer.
func TestRouterMatchesSingleNode(t *testing.T) {
	d := buildSynth(t)
	single := openServer(t, d)
	for _, shards := range []int{2, 3} {
		rt, _ := openCluster(t, d, shards, Options{})
		routed := httptest.NewServer(rt.Handler())
		t.Cleanup(routed.Close)
		for _, strategy := range []string{"optimized", "no-ss-reduction"} {
			for _, q := range testQueries {
				req := map[string]any{"query": q, "alpha": 0.05, "strategy": strategy}

				// Collect: same set, same mapping-order sort.
				_, sb := postMatch(t, single.URL, req)
				sm, sres := matchesOf(t, sb)
				_, rb := postMatch(t, routed.URL, req)
				rm, rres := matchesOf(t, rb)
				if !reflect.DeepEqual(sm, rm) {
					t.Fatalf("shards=%d strategy=%s collect mismatch for %q:\nsingle %d matches\nrouted %d matches",
						shards, strategy, q, len(sm), len(rm))
				}
				if sres.NumMatches != rres.NumMatches {
					t.Fatalf("num_matches: single %d, routed %d", sres.NumMatches, rres.NumMatches)
				}

				// Top-K: same ranking and cut.
				topReq := map[string]any{"query": q, "alpha": 0.05, "strategy": strategy, "order": "prob", "limit": 5}
				_, sb = postMatch(t, single.URL, topReq)
				sm, _ = matchesOf(t, sb)
				_, rb = postMatch(t, routed.URL, topReq)
				rm, _ = matchesOf(t, rb)
				if !reflect.DeepEqual(sm, rm) {
					t.Fatalf("shards=%d strategy=%s top-K mismatch for %q", shards, strategy, q)
				}

				// Probability-ordered stream: exact global order from the
				// k-way merge.
				streamReq := map[string]any{"query": q, "alpha": 0.05, "strategy": strategy, "order": "prob"}
				rsm, done := streamMatches(t, routed.URL, streamReq)
				_, sb = postMatch(t, single.URL, streamReq)
				sm, _ = matchesOf(t, sb)
				if len(rsm) == 0 {
					rsm = nil
				}
				if len(sm) == 0 {
					sm = nil
				}
				if !reflect.DeepEqual(sm, rsm) {
					t.Fatalf("shards=%d strategy=%s prob-stream mismatch for %q", shards, strategy, q)
				}
				if done.Partial || len(done.ShardsFailed) > 0 {
					t.Fatalf("unexpected partial stream: %+v", done)
				}

				// Emission-order stream: same multiset (order is
				// nondeterministic by design); compare after a canonical sort.
				emitReq := map[string]any{"query": q, "alpha": 0.05, "strategy": strategy}
				esm, _ := streamMatches(t, routed.URL, emitReq)
				sortEntries(esm)
				want := append([]server.MatchEntry(nil), sm...)
				sortEntries(want)
				if len(esm) == 0 {
					esm = nil
				}
				if len(want) == 0 {
					want = nil
				}
				if !reflect.DeepEqual(want, esm) {
					t.Fatalf("shards=%d strategy=%s emit-stream multiset mismatch for %q", shards, strategy, q)
				}
			}
		}
	}
}

func sortEntries(ms []server.MatchEntry) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && probBetter(&ms[j], &ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// TestRouterPartialFailure kills one shard and checks the partial-result
// contract: partial:true + shards_failed without -require-all, a hard 502
// with it, and a disconnected-query 400 at the router.
func TestRouterPartialFailure(t *testing.T) {
	d := buildSynth(t)
	rt, backends := openCluster(t, d, 2, Options{})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)

	req := map[string]any{"query": testQueries[0], "alpha": 0.05}
	resp, raw := postMatch(t, routed.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy cluster: HTTP %d: %s", resp.StatusCode, raw)
	}
	var before MatchResponse
	if err := json.Unmarshal(raw, &before); err != nil {
		t.Fatal(err)
	}
	if before.Partial {
		t.Fatal("healthy cluster answered partial")
	}

	backends[1].Close()
	resp, raw = postMatch(t, routed.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one shard down: HTTP %d (want 200 partial): %s", resp.StatusCode, raw)
	}
	var partial MatchResponse
	if err := json.Unmarshal(raw, &partial); err != nil {
		t.Fatal(err)
	}
	if !partial.Partial || !reflect.DeepEqual(partial.ShardsFailed, []int{1}) {
		t.Fatalf("want partial with shards_failed=[1], got %+v", partial)
	}
	if partial.NumMatches > before.NumMatches {
		t.Fatalf("partial answer has more matches (%d) than the full one (%d)", partial.NumMatches, before.NumMatches)
	}

	// Stream over a dead shard: done line reports the failure.
	_, done := streamMatches(t, routed.URL, req)
	if !done.Partial || !reflect.DeepEqual(done.ShardsFailed, []int{1}) {
		t.Fatalf("stream: want partial done with shards_failed=[1], got %+v", done)
	}

	// A health poll marks the dead replica down and readiness follows.
	rt.pollHealth()
	hresp, err := http.Get(routed.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router readiness with a dead shard: HTTP %d (want 503)", hresp.StatusCode)
	}
	lresp, err := http.Get(routed.URL + "/healthz/live")
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("router liveness: HTTP %d (want 200)", lresp.StatusCode)
	}
}

func TestRouterRequireAll(t *testing.T) {
	d := buildSynth(t)
	rt, backends := openCluster(t, d, 2, Options{RequireAll: true})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)
	backends[0].Close()
	resp, raw := postMatch(t, routed.URL, map[string]any{"query": testQueries[0], "alpha": 0.05})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("-require-all with a dead shard: HTTP %d (want 502): %s", resp.StatusCode, raw)
	}
}

// TestRouterRejectsDisconnected checks the router-side 400: a disconnected
// query's matches would span linkage closures, which no shard can see.
func TestRouterRejectsDisconnected(t *testing.T) {
	d := buildSynth(t)
	rt, _ := openCluster(t, d, 2, Options{})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)
	resp, raw := postMatch(t, routed.URL, map[string]any{"query": "node A l0\nnode B l1", "alpha": 0.05})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("disconnected query: HTTP %d (want 400): %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "disconnected") {
		t.Fatalf("error does not name the problem: %s", raw)
	}
}

// TestRouterRequestID checks the correlation-id contract: a supplied id is
// echoed, a missing one is minted.
func TestRouterRequestID(t *testing.T) {
	d := buildSynth(t)
	rt, _ := openCluster(t, d, 2, Options{})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)

	body := []byte(`{"query":"node A l0\nnode B l1\nedge A B","alpha":0.05}`)
	req, _ := http.NewRequest(http.MethodPost, routed.URL+"/match", bytes.NewReader(body))
	req.Header.Set(server.RequestIDHeader, "test-correlation-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(server.RequestIDHeader); got != "test-correlation-42" {
		t.Fatalf("supplied request id not echoed: %q", got)
	}

	resp, err = http.Post(routed.URL+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(server.RequestIDHeader); len(got) != 16 {
		t.Fatalf("minted request id %q (want 16 hex digits)", got)
	}
}

// TestRouterMetrics scrapes the router's registry for the new families.
func TestRouterMetrics(t *testing.T) {
	d := buildSynth(t)
	rt, _ := openCluster(t, d, 2, Options{})
	routed := httptest.NewServer(rt.Handler())
	t.Cleanup(routed.Close)
	postMatch(t, routed.URL, map[string]any{"query": testQueries[0], "alpha": 0.05})
	resp, err := http.Get(routed.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	page := buf.String()
	for _, family := range []string{
		"peg_router_requests_total",
		"peg_router_request_duration_seconds",
		"peg_router_shard_requests_total",
		"peg_router_shard_latency_seconds",
		"peg_router_hedges_total",
		"peg_router_merge_candidates",
		"peg_router_shards",
		"peg_router_shard_healthy_replicas",
		"peg_router_shard_inflight",
	} {
		if !strings.Contains(page, family) {
			t.Fatalf("metrics page missing %s:\n%s", family, page)
		}
	}
	if !strings.Contains(page, `peg_router_requests_total{endpoint="match",outcome="ok"} 1`) {
		t.Fatalf("match request not counted ok:\n%s", page)
	}
}
