package entity

import (
	"fmt"
	"io"

	"repro/internal/prob"
	"repro/internal/refgraph"
	"repro/internal/storage/binio"
)

// Binary snapshot format for a built PEG. The paper keeps the entity graph
// in a disk-based store (Neo4j); Save/Load give the offline phase the same
// property — cmd/pegbuild can persist the built graph so the online phase
// never re-runs merging or component inference.
const (
	snapMagic   = "PEG1"
	snapVersion = 1
)

// Save writes the graph (nodes, merged distributions, components with their
// legal-configuration distributions, and edges) as a versioned snapshot.
func (g *Graph) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Str(snapMagic)
	bw.U8(snapVersion)
	bw.U8(uint8(g.sem))

	names := g.alpha.Names()
	bw.U32(uint32(len(names)))
	for _, n := range names {
		bw.Str(n)
	}

	bw.U32(uint32(len(g.nodes)))
	for i := range g.nodes {
		nd := &g.nodes[i]
		bw.U32(uint32(len(nd.Refs)))
		for _, r := range nd.Refs {
			bw.U32(uint32(r))
		}
		es := nd.Label.Entries()
		bw.U32(uint32(len(es)))
		for _, e := range es {
			bw.U32(uint32(e.Label))
			bw.F64(e.P)
		}
		bw.U32(uint32(nd.Comp))
		bw.U8(nd.CompPos)
		bw.F64(nd.Exist)
	}

	bw.U32(uint32(len(g.comps)))
	for _, c := range g.comps {
		bw.U32(uint32(len(c.Members)))
		for _, m := range c.Members {
			bw.U32(uint32(m))
		}
		bw.U32(uint32(len(c.Configs)))
		for _, cfg := range c.Configs {
			bw.U64(cfg.Mask)
			bw.F64(cfg.P)
		}
	}

	// Edges once per pair (a < b).
	nEdges := g.NumEdges()
	bw.U32(uint32(nEdges))
	for a := range g.adj {
		for _, nb := range g.adj[a] {
			if nb.To <= ID(a) {
				continue
			}
			bw.U32(uint32(a))
			bw.U32(uint32(nb.To))
			bw.F64(nb.E.base)
			if nb.E.cpt != nil {
				bw.U8(1)
				for _, p := range nb.E.cpt {
					bw.F64(p)
				}
			} else {
				bw.U8(0)
			}
		}
	}
	if err := bw.Err(); err != nil {
		return fmt.Errorf("entity: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Graph, error) {
	br := binio.NewReader(r)
	if m := br.Str(); br.Err() == nil && m != snapMagic {
		return nil, fmt.Errorf("entity: bad magic %q", m)
	}
	if v := br.U8(); br.Err() == nil && v != snapVersion {
		return nil, fmt.Errorf("entity: unsupported version %d", v)
	}
	g := &Graph{sem: Semantics(br.U8())}

	nLabels := int(br.U32())
	if br.Err() != nil || nLabels <= 0 || nLabels > 1<<16 {
		return nil, fmt.Errorf("entity: load alphabet: %w", brErr(br))
	}
	names := make([]string, nLabels)
	for i := range names {
		names[i] = br.Str()
	}
	alpha, err := prob.NewAlphabet(names...)
	if err != nil {
		return nil, fmt.Errorf("entity: load alphabet: %w", err)
	}
	g.alpha = alpha

	nNodes := int(br.U32())
	if br.Err() != nil || nNodes < 0 || nNodes > 1<<28 {
		return nil, fmt.Errorf("entity: load nodes: %w", brErr(br))
	}
	g.nodes = make([]Node, nNodes)
	for i := 0; i < nNodes && br.Err() == nil; i++ {
		nd := &g.nodes[i]
		nRefs := int(br.U32())
		if nRefs < 0 || nRefs > 1<<20 {
			return nil, fmt.Errorf("entity: node %d has %d refs", i, nRefs)
		}
		nd.Refs = make([]refgraph.RefID, nRefs)
		for j := range nd.Refs {
			nd.Refs[j] = refgraph.RefID(br.U32())
		}
		nEnt := int(br.U32())
		entries := make([]prob.LabelProb, nEnt)
		for j := range entries {
			entries[j].Label = prob.LabelID(br.U32())
			entries[j].P = br.F64()
		}
		if br.Err() == nil {
			d, err := prob.NewDist(entries...)
			if err != nil {
				return nil, fmt.Errorf("entity: node %d label dist: %w", i, err)
			}
			nd.Label = d
		}
		nd.Comp = int32(br.U32())
		nd.CompPos = br.U8()
		nd.Exist = br.F64()
	}

	nComps := int(br.U32())
	if br.Err() != nil || nComps < 0 || nComps > nNodes {
		return nil, fmt.Errorf("entity: load components: %w", brErr(br))
	}
	g.comps = make([]*Component, nComps)
	for i := 0; i < nComps && br.Err() == nil; i++ {
		nm := int(br.U32())
		if nm < 0 || nm > 64 {
			return nil, fmt.Errorf("entity: component %d has %d members", i, nm)
		}
		c := &Component{Members: make([]ID, nm)}
		for j := range c.Members {
			c.Members[j] = ID(br.U32())
		}
		nc := int(br.U32())
		if nc < 0 || nc > 1<<20 {
			return nil, fmt.Errorf("entity: component %d has %d configs", i, nc)
		}
		c.Configs = make([]Config, nc)
		for j := range c.Configs {
			c.Configs[j].Mask = br.U64()
			c.Configs[j].P = br.F64()
		}
		g.comps[i] = c
	}

	g.adj = make([][]Neighbor, nNodes)
	nEdges := int(br.U32())
	cptLen := nLabels * nLabels
	for i := 0; i < nEdges && br.Err() == nil; i++ {
		a := ID(br.U32())
		b := ID(br.U32())
		if int(a) >= nNodes || int(b) >= nNodes {
			return nil, fmt.Errorf("entity: edge references node out of range")
		}
		ep := &EdgeProb{base: br.F64(), stride: int32(nLabels)}
		if br.U8() == 1 {
			ep.cpt = make([]float64, cptLen)
			for j := range ep.cpt {
				ep.cpt[j] = br.F64()
			}
		}
		ep.max = ep.base
		for _, v := range ep.cpt {
			if v > ep.max {
				ep.max = v
			}
		}
		g.adj[a] = append(g.adj[a], Neighbor{To: b, E: ep})
		g.adj[b] = append(g.adj[b], Neighbor{To: a, E: ep})
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("entity: load: %w", err)
	}
	for _, nbs := range g.adj {
		sortNeighbors(nbs)
	}
	return g, nil
}

func sortNeighbors(nbs []Neighbor) {
	for i := 1; i < len(nbs); i++ {
		for j := i; j > 0 && nbs[j].To < nbs[j-1].To; j-- {
			nbs[j], nbs[j-1] = nbs[j-1], nbs[j]
		}
	}
}

func brErr(br *binio.Reader) error {
	if err := br.Err(); err != nil {
		return err
	}
	return fmt.Errorf("corrupt header field")
}
