package entity_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/prob"
)

func TestSaveLoadMotivating(t *testing.T) {
	g := buildMotivating(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := entity.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() || got.NumComponents() != g.NumComponents() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			got.NumNodes(), got.NumEdges(), got.NumComponents(),
			g.NumNodes(), g.NumEdges(), g.NumComponents())
	}
	// Probabilities survive exactly.
	alpha := g.Alphabet()
	r, a, i := alpha.ID("r"), alpha.ID("a"), alpha.ID("i")
	asn := entity.Assignment{
		Nodes:  []entity.ID{fixtures.S34, fixtures.S2, fixtures.S1},
		Labels: []prob.LabelID{r, a, i},
		Edges:  [][2]int{{0, 1}, {1, 2}},
	}
	if p := got.PrMatch(asn); math.Abs(p-0.2025) > 1e-12 {
		t.Errorf("PrMatch after reload = %v, want 0.2025", p)
	}
	if p := got.Exist(fixtures.S34); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("Exist(s34) after reload = %v", p)
	}
	if got.Semantics() != g.Semantics() {
		t.Error("semantics lost")
	}
	if got.Alphabet().Name(2) != "i" {
		t.Errorf("alphabet lost: %v", got.Alphabet().Names())
	}
	// Adjacency intact (sorted, with edge probabilities).
	ep, ok := got.EdgeBetween(fixtures.S34, fixtures.S2)
	if !ok || math.Abs(ep.Prob(r, a)-0.75) > 1e-12 {
		t.Errorf("merged edge after reload: %v %v", ep, ok)
	}
}

func TestLoadCorrupt(t *testing.T) {
	g := buildMotivating(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := entity.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
	for _, n := range []int{0, 4, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := entity.Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", n)
		}
	}
}
