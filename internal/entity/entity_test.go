package entity_test

import (
	"math"
	"testing"

	"repro/internal/entity"
	"repro/internal/fixtures"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func buildMotivating(t *testing.T) *entity.Graph {
	t.Helper()
	g, err := fixtures.MotivatingGraph()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestMotivatingExampleStructure(t *testing.T) {
	g := buildMotivating(t)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	alpha := g.Alphabet()
	r, i, a := alpha.ID("r"), alpha.ID("i"), alpha.ID("a")

	// Merged entity label distribution r(0.5), i(0.5) — Section 2.
	if p := g.PrLabel(fixtures.S34, r); !approx(p, 0.5) {
		t.Errorf("Pr(s34.l = r) = %v, want 0.5", p)
	}
	if p := g.PrLabel(fixtures.S34, i); !approx(p, 0.5) {
		t.Errorf("Pr(s34.l = i) = %v, want 0.5", p)
	}
	if p := g.PrLabel(fixtures.S2, a); !approx(p, 1) {
		t.Errorf("Pr(s2.l = a) = %v, want 1", p)
	}

	// Merged edge s34–s2 = average(1, 0.5) = 0.75 — Section 2.
	ep, ok := g.EdgeBetween(fixtures.S34, fixtures.S2)
	if !ok {
		t.Fatal("edge s34–s2 missing")
	}
	if p := ep.Prob(r, a); !approx(p, 0.75) {
		t.Errorf("Pr(s34–s2) = %v, want 0.75", p)
	}

	// s3–s34 share reference r3: never an edge, never coexist.
	if _, ok := g.EdgeBetween(fixtures.S3, fixtures.S34); ok {
		t.Error("edge between entities sharing a reference")
	}
	if !g.RefsOverlap(fixtures.S3, fixtures.S34) {
		t.Error("RefsOverlap(s3, s34) = false")
	}
	if g.RefsOverlap(fixtures.S1, fixtures.S2) {
		t.Error("RefsOverlap(s1, s2) = true")
	}
}

func TestMotivatingExampleExistence(t *testing.T) {
	g := buildMotivating(t)
	// Pr(merged) = 0.8, Pr(unmerged) = 0.2 (Figure 1(b)/(c)).
	if p := g.Exist(fixtures.S34); !approx(p, 0.8) {
		t.Errorf("Pr(s34 exists) = %v, want 0.8", p)
	}
	if p := g.Exist(fixtures.S3); !approx(p, 0.2) {
		t.Errorf("Pr(s3 exists) = %v, want 0.2", p)
	}
	if p := g.Exist(fixtures.S4); !approx(p, 0.2) {
		t.Errorf("Pr(s4 exists) = %v, want 0.2", p)
	}
	if p := g.Exist(fixtures.S1); !approx(p, 1) {
		t.Errorf("Pr(s1 exists) = %v, want 1", p)
	}

	// Joint marginals: Prn is NOT a per-node product within a component.
	if p := g.Prn([]entity.ID{fixtures.S3, fixtures.S4}); !approx(p, 0.2) {
		t.Errorf("Prn(s3, s4) = %v, want 0.2 (component-joint, not 0.04)", p)
	}
	if p := g.Prn([]entity.ID{fixtures.S3, fixtures.S34}); p != 0 {
		t.Errorf("Prn(s3, s34) = %v, want 0 (share r3)", p)
	}
	if p := g.PrnPair(fixtures.S3, fixtures.S4); !approx(p, 0.2) {
		t.Errorf("PrnPair(s3, s4) = %v, want 0.2", p)
	}
	if p := g.PrnPair(fixtures.S1, fixtures.S34); !approx(p, 0.8) {
		t.Errorf("PrnPair(s1, s34) = %v, want 0.8", p)
	}
}

func TestMotivatingExampleMatchProbabilities(t *testing.T) {
	g := buildMotivating(t)
	alpha := g.Alphabet()
	r, a, i := alpha.ID("r"), alpha.ID("a"), alpha.ID("i")
	pathEdges := [][2]int{{0, 1}, {1, 2}}

	for _, m := range fixtures.MotivatingMatches() {
		asn := entity.Assignment{
			Nodes:  []entity.ID{m.Nodes[0], m.Nodes[1], m.Nodes[2]},
			Labels: []prob.LabelID{r, a, i},
			Edges:  pathEdges,
		}
		if got := g.PrMatch(asn); !approx(got, m.Pr) {
			t.Errorf("Pr(%v) = %v, want %v", m.Nodes, got, m.Pr)
		}
	}
}

func TestPrleMissingEdge(t *testing.T) {
	g := buildMotivating(t)
	alpha := g.Alphabet()
	r, i := alpha.ID("r"), alpha.ID("i")
	// s1–s3 has no GU edge.
	asn := entity.Assignment{
		Nodes:  []entity.ID{fixtures.S1, fixtures.S3},
		Labels: []prob.LabelID{i, r},
		Edges:  [][2]int{{0, 1}},
	}
	if p := g.Prle(asn); p != 0 {
		t.Errorf("Prle with missing edge = %v, want 0", p)
	}
}

func TestComponents(t *testing.T) {
	g := buildMotivating(t)
	if g.NumComponents() != 3 {
		t.Fatalf("NumComponents = %d, want 3 ({s1}, {s2}, {s3,s4,s34})", g.NumComponents())
	}
	c := g.ComponentOf(fixtures.S3)
	if len(c.Members) != 3 {
		t.Fatalf("identity component members = %v", c.Members)
	}
	if len(c.Configs) != 2 {
		t.Fatalf("legal configs = %d, want 2", len(c.Configs))
	}
	sum := 0.0
	for _, cfg := range c.Configs {
		sum += cfg.P
	}
	if !approx(sum, 1) {
		t.Errorf("config probabilities sum to %v", sum)
	}
	if p := c.MarginalAll(0); p != 1 {
		t.Errorf("MarginalAll(0) = %v, want 1", p)
	}
}

func TestSemanticsFactor(t *testing.T) {
	// Under the literal Definition 2 factors with singleton priors 1, the
	// {r3,r4} component weighs unmerged = 1·1 and merged = 0.8·0.8, giving
	// Pr(unmerged) = 1/1.64, Pr(merged) = 0.64/1.64.
	d := fixtures.MotivatingPGD()
	g, err := entity.Build(d, entity.BuildOptions{Semantics: entity.SemanticsFactor})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wantMerged := 0.64 / 1.64
	if p := g.Exist(fixtures.S34); math.Abs(p-wantMerged) > eps {
		t.Errorf("factor semantics Pr(s34) = %v, want %v", p, wantMerged)
	}
	if p := g.Exist(fixtures.S3); math.Abs(p-1/1.64) > eps {
		t.Errorf("factor semantics Pr(s3) = %v, want %v", p, 1/1.64)
	}
}

func TestSemanticsFactorSingletonPrior(t *testing.T) {
	d := fixtures.MotivatingPGD()
	// Priors 0.4 on both singletons: unmerged = 0.16, merged = 0.64,
	// normalized: 0.2 / 0.8 — the factor semantics can match the example
	// only with tuned priors.
	if err := d.SetSingletonPrior(2, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSingletonPrior(3, 0.4); err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{Semantics: entity.SemanticsFactor})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p := g.Exist(fixtures.S34); math.Abs(p-0.8) > eps {
		t.Errorf("Pr(s34) = %v, want 0.8", p)
	}
}

func TestOverlappingSets(t *testing.T) {
	// Sets {r0,r1} (p=0.6) and {r1,r2} (p=0.5) share r1: legal configs are
	// all-singletons (0.4·0.5), merge01 (0.6·0.5), merge12 (0.4·0.5);
	// both-merged is illegal. Z = 0.7.
	alpha := prob.MustAlphabet("x")
	d := refgraph.New(alpha)
	for k := 0; k < 3; k++ {
		d.AddReference(prob.Point(0))
	}
	if _, err := d.AddReferenceSet([]refgraph.RefID{0, 1}, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddReferenceSet([]refgraph.RefID{1, 2}, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Entities: 0,1,2 singletons; 3 = {r0,r1}; 4 = {r1,r2}.
	if g.NumComponents() != 1 {
		t.Fatalf("NumComponents = %d, want 1", g.NumComponents())
	}
	z := 0.7
	if p := g.Exist(3); math.Abs(p-0.3/z) > eps {
		t.Errorf("Pr(e3) = %v, want %v", p, 0.3/z)
	}
	if p := g.Exist(4); math.Abs(p-0.2/z) > eps {
		t.Errorf("Pr(e4) = %v, want %v", p, 0.2/z)
	}
	if p := g.Exist(1); math.Abs(p-0.2/z) > eps {
		t.Errorf("Pr(e1 singleton) = %v, want %v", p, 0.2/z)
	}
	if p := g.Prn([]entity.ID{3, 4}); p != 0 {
		t.Errorf("Prn(e3,e4) = %v, want 0 (share r1)", p)
	}
}

func TestMergedEdgeWithCPT(t *testing.T) {
	// Two references merged; edges to a third reference where one carries a
	// CPT. The merged edge must be conditional, averaging the CPT cell with
	// the unconditional base.
	alpha := prob.MustAlphabet("x", "y")
	d := refgraph.New(alpha)
	r0 := d.AddReference(prob.Point(0))
	r1 := d.AddReference(prob.Point(0))
	r2 := d.AddReference(prob.Point(1))
	cpt := []float64{
		0.8, 0.4,
		0.4, 0.2,
	}
	if err := d.AddEdge(r0, r2, refgraph.EdgeDist{P: 0.8, CPT: cpt}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(r1, r2, refgraph.EdgeDist{P: 0.6}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddReferenceSet([]refgraph.RefID{r0, r1}, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	merged := entity.ID(3)
	ep, ok := g.EdgeBetween(merged, entity.ID(r2))
	if !ok {
		t.Fatal("merged edge missing")
	}
	if !ep.Conditional() {
		t.Fatal("merged edge lost its CPT")
	}
	// Cell (x,y): average(cpt[0][1]=0.4, base 0.6) = 0.5.
	if p := ep.Prob(0, 1); !approx(p, 0.5) {
		t.Errorf("merged CPT cell (x,y) = %v, want 0.5", p)
	}
	// Symmetry.
	if p := ep.Prob(1, 0); !approx(p, 0.5) {
		t.Errorf("merged CPT cell (y,x) = %v, want 0.5", p)
	}
	if m := ep.Max(); !approx(m, 0.7) {
		// Max over cells: (x,x): avg(0.8, 0.6)=0.7 is the largest.
		t.Errorf("merged edge Max = %v, want 0.7", m)
	}
}

func TestZeroProbEdgeExcluded(t *testing.T) {
	alpha := prob.MustAlphabet("x")
	d := refgraph.New(alpha)
	r0 := d.AddReference(prob.Point(0))
	r1 := d.AddReference(prob.Point(0))
	if err := d.AddEdge(r0, r1, refgraph.EdgeDist{P: 0}); err != nil {
		t.Fatal(err)
	}
	g, err := entity.Build(d, entity.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("zero-probability edge present in GU")
	}
}

func TestNodesRefsDisjoint(t *testing.T) {
	g := buildMotivating(t)
	if !g.NodesRefsDisjoint([]entity.ID{fixtures.S1, fixtures.S2, fixtures.S34}) {
		t.Error("disjoint nodes reported overlapping")
	}
	if g.NodesRefsDisjoint([]entity.ID{fixtures.S3, fixtures.S2, fixtures.S34}) {
		t.Error("overlapping nodes reported disjoint")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := buildMotivating(t)
	if g.NumEdges() != 4 {
		// s1–s2 (0.9), s2–s3 (1), s2–s4 (0.5), s2–s34 (0.75)
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if d := g.Degree(fixtures.S2); d != 4 {
		t.Errorf("Degree(s2) = %d, want 4", d)
	}
	labels := g.Labels(fixtures.S34)
	if len(labels) != 2 {
		t.Errorf("Labels(s34) = %v", labels)
	}
	if !g.HasLabel(fixtures.S34, g.Alphabet().ID("r")) {
		t.Error("HasLabel(s34, r) = false")
	}
	if g.HasLabel(fixtures.S2, g.Alphabet().ID("r")) {
		t.Error("HasLabel(s2, r) = true")
	}
	if len(g.Refs(fixtures.S34)) != 2 {
		t.Errorf("Refs(s34) = %v", g.Refs(fixtures.S34))
	}
	if g.Semantics() != entity.SemanticsExample {
		t.Errorf("Semantics = %v", g.Semantics())
	}
}

func TestPrnEmptyAndSingle(t *testing.T) {
	g := buildMotivating(t)
	if p := g.Prn(nil); p != 1 {
		t.Errorf("Prn(nil) = %v, want 1", p)
	}
	if p := g.Prn([]entity.ID{fixtures.S34}); !approx(p, 0.8) {
		t.Errorf("Prn([s34]) = %v, want 0.8", p)
	}
	// Duplicates are harmless.
	if p := g.Prn([]entity.ID{fixtures.S34, fixtures.S34}); !approx(p, 0.8) {
		t.Errorf("Prn([s34,s34]) = %v, want 0.8", p)
	}
}

func TestBuildValidates(t *testing.T) {
	alpha := prob.MustAlphabet("x")
	d := refgraph.New(alpha)
	d.AddReference(prob.Dist{}) // missing label distribution
	if _, err := entity.Build(d, entity.BuildOptions{}); err == nil {
		t.Error("invalid PGD accepted")
	}
}
