package entity

import (
	"fmt"
	"sort"

	"repro/internal/prob"
	"repro/internal/refgraph"
)

// Delta describes a batch of PGD mutations to fold into an existing entity
// graph incrementally. Reference and set ids refer to the (already mutated)
// PGD handed to ApplyDelta; both id spaces are append-only, so ids recorded
// before the mutation stay valid.
type Delta struct {
	// NewRefs are references appended to the PGD since the graph was built.
	NewRefs []refgraph.RefID
	// Edges are reference edges added or overwritten.
	Edges []refgraph.EdgeKey
	// NewSets are reference sets appended to the PGD.
	NewSets []refgraph.SetID
	// SetProbs are pre-existing sets whose merge probability changed.
	SetProbs []refgraph.SetID
}

// Empty reports whether the delta carries no mutations.
func (dl Delta) Empty() bool {
	return len(dl.NewRefs) == 0 && len(dl.Edges) == 0 && len(dl.NewSets) == 0 && len(dl.SetProbs) == 0
}

// Merge appends the mutations of other onto dl (other happened after dl).
// A probability update on a set that dl already introduces stays a NewSets
// entry — the set's current probability is read from the PGD either way.
func (dl Delta) Merge(other Delta) Delta {
	out := Delta{
		NewRefs: append(append([]refgraph.RefID(nil), dl.NewRefs...), other.NewRefs...),
		Edges:   append(append([]refgraph.EdgeKey(nil), dl.Edges...), other.Edges...),
		NewSets: append(append([]refgraph.SetID(nil), dl.NewSets...), other.NewSets...),
	}
	isNew := make(map[refgraph.SetID]bool, len(out.NewSets))
	for _, s := range out.NewSets {
		isNew[s] = true
	}
	for _, s := range append(append([]refgraph.SetID(nil), dl.SetProbs...), other.SetProbs...) {
		if !isNew[s] {
			out.SetProbs = append(out.SetProbs, s)
		}
	}
	return out
}

// ApplyDelta produces a new entity graph reflecting the mutated PGD without
// rebuilding it from scratch: new entities are appended (existing entity ids
// are stable), entity edges are recomputed only for pairs whose contributing
// reference edges changed, and identity components are re-enumerated only
// where the mutation touched them — the incremental counterpart of the
// offline "component probabilities" step of Section 5.1. Untouched
// components (including their marginal memos) and adjacency rows are shared
// with the old graph, which stays fully usable for concurrent readers.
//
// The second result lists the dirty entities: every entity whose label/edge
// surroundings or identity marginals may differ from the old graph, plus all
// new entities. Paths avoiding every dirty entity score identically in both
// graphs.
func ApplyDelta(old *Graph, d *refgraph.PGD, dl Delta, opt BuildOptions) (*Graph, []ID, error) {
	if old.alpha != d.Alphabet() {
		return nil, nil, fmt.Errorf("entity: delta PGD has a different alphabet")
	}
	merge := d.Merge()
	nLabels := old.alpha.Len()

	ng := &Graph{alpha: old.alpha, sem: old.sem}
	ng.nodes = make([]Node, len(old.nodes), len(old.nodes)+len(dl.NewRefs)+len(dl.NewSets))
	copy(ng.nodes, old.nodes)

	var newEnts []ID
	for _, r := range dl.NewRefs {
		if r < 0 || int(r) >= d.NumRefs() {
			return nil, nil, fmt.Errorf("entity: delta references unknown reference %d", r)
		}
		ng.nodes = append(ng.nodes, Node{Refs: []refgraph.RefID{r}, Label: d.RefLabel(r), Set: -1})
		newEnts = append(newEnts, ID(len(ng.nodes)-1))
	}
	for _, sid := range dl.NewSets {
		if sid < 0 || int(sid) >= d.NumSets() {
			return nil, nil, fmt.Errorf("entity: delta references unknown set %d", sid)
		}
		s := d.Set(sid)
		dists := make([]prob.Dist, len(s.Members))
		for j, m := range s.Members {
			dists[j] = d.RefLabel(m)
		}
		ng.nodes = append(ng.nodes, Node{Refs: s.Members, Label: merge.Labels(dists), Set: sid})
		newEnts = append(newEnts, ID(len(ng.nodes)-1))
	}

	refToEnts := make([][]ID, d.NumRefs())
	setEnt := make(map[refgraph.SetID]ID)
	for i := range ng.nodes {
		for _, r := range ng.nodes[i].Refs {
			if r < 0 || int(r) >= d.NumRefs() {
				return nil, nil, fmt.Errorf("entity: node %d references unknown reference %d", i, r)
			}
			refToEnts[r] = append(refToEnts[r], ID(i))
		}
		if s := ng.nodes[i].Set; s >= 0 {
			setEnt[s] = ID(i)
		}
	}

	changed := changedPairs(ng, d, dl, refToEnts, newEnts)
	ng.adj = make([][]Neighbor, len(ng.nodes))
	copy(ng.adj, old.adj)
	cloned := make(map[ID]bool, 2*len(changed))
	for p := range changed {
		ep := computePairEdge(d, merge, &ng.nodes[p.a], &ng.nodes[p.b], nLabels)
		setNeighbor(ng, cloned, p.a, p.b, ep)
		setNeighbor(ng, cloned, p.b, p.a, ep)
	}

	dirtyComps, err := recomputeComponents(old, ng, d, dl, refToEnts, setEnt, newEnts, opt)
	if err != nil {
		return nil, nil, err
	}

	dirty := make(map[ID]bool, len(newEnts)+2*len(changed))
	for _, e := range newEnts {
		dirty[e] = true
	}
	for p := range changed {
		dirty[p.a] = true
		dirty[p.b] = true
	}
	for _, e := range dirtyComps {
		dirty[e] = true
	}
	out := make([]ID, 0, len(dirty))
	for e := range dirty {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return ng, out, nil
}

// entPair is an unordered entity pair (a < b).
type entPair struct{ a, b ID }

// changedPairs collects the entity pairs whose merged edge distribution may
// have changed: pairs spanning a mutated reference edge, plus every pair a
// new entity forms through the PGD edges incident to its member references.
func changedPairs(ng *Graph, d *refgraph.PGD, dl Delta, refToEnts [][]ID, newEnts []ID) map[entPair]bool {
	changed := make(map[entPair]bool)
	add := func(a, b ID) {
		if a == b || ng.refsOverlapSlices(ng.nodes[a].Refs, ng.nodes[b].Refs) {
			return
		}
		if a > b {
			a, b = b, a
		}
		changed[entPair{a, b}] = true
	}
	for _, ek := range dl.Edges {
		if int(ek.A) >= len(refToEnts) || int(ek.B) >= len(refToEnts) || ek.A < 0 || ek.B < 0 {
			continue
		}
		for _, ea := range refToEnts[ek.A] {
			for _, eb := range refToEnts[ek.B] {
				add(ea, eb)
			}
		}
	}
	// Only new set-entities can connect through pre-existing PGD edges (a
	// brand-new reference has none, and edges added in this batch are in
	// dl.Edges above), so the full edge scan is gated on them.
	if len(dl.NewSets) > 0 {
		inNew := make(map[refgraph.RefID][]ID)
		for _, e := range newEnts {
			for _, r := range ng.nodes[e].Refs {
				inNew[r] = append(inNew[r], e)
			}
		}
		d.Edges(func(k refgraph.EdgeKey, _ refgraph.EdgeDist) bool {
			for _, e := range inNew[k.A] {
				for _, o := range refToEnts[k.B] {
					add(e, o)
				}
			}
			for _, e := range inNew[k.B] {
				for _, o := range refToEnts[k.A] {
					add(e, o)
				}
			}
			return true
		})
	}
	return changed
}

// computePairEdge merges the existence distributions of every PGD edge
// between the two entities' reference sets, mirroring buildEdges for one
// pair. Returns nil when no reference edge contributes or the merged maximum
// is zero (no GU edge).
func computePairEdge(d *refgraph.PGD, merge prob.MergeFuncs, n1, n2 *Node, nLabels int) *EdgeProb {
	var dists []refgraph.EdgeDist
	anyCPT := false
	for _, r1 := range n1.Refs {
		for _, r2 := range n2.Refs {
			if e, ok := d.Edge(r1, r2); ok {
				dists = append(dists, e)
				if e.CPT != nil {
					anyCPT = true
				}
			}
		}
	}
	if len(dists) == 0 {
		return nil
	}
	ep := &EdgeProb{stride: int32(nLabels)}
	ps := make([]float64, len(dists))
	for i, ed := range dists {
		ps[i] = ed.P
	}
	ep.base = merge.Edges(ps)
	if anyCPT {
		ep.cpt = make([]float64, nLabels*nLabels)
		cell := make([]float64, len(dists))
		for l1 := 0; l1 < nLabels; l1++ {
			for l2 := 0; l2 < nLabels; l2++ {
				for i, ed := range dists {
					cell[i] = ed.Prob(prob.LabelID(l1), prob.LabelID(l2), nLabels)
				}
				ep.cpt[l1*nLabels+l2] = merge.Edges(cell)
			}
		}
	}
	ep.max = ep.base
	for _, v := range ep.cpt {
		if v > ep.max {
			ep.max = v
		}
	}
	if ep.max <= 0 {
		return nil
	}
	return ep
}

// setNeighbor installs (or removes, when ep is nil) the edge v→to in ng's
// adjacency, cloning the row copy-on-write so the old graph's rows stay
// untouched.
func setNeighbor(ng *Graph, cloned map[ID]bool, v, to ID, ep *EdgeProb) {
	if !cloned[v] {
		ng.adj[v] = append([]Neighbor(nil), ng.adj[v]...)
		cloned[v] = true
	}
	row := ng.adj[v]
	i := sort.Search(len(row), func(i int) bool { return row[i].To >= to })
	present := i < len(row) && row[i].To == to
	switch {
	case ep == nil && present:
		ng.adj[v] = append(row[:i], row[i+1:]...)
	case ep == nil:
		// nothing to remove
	case present:
		row[i].E = ep
	default:
		row = append(row, Neighbor{})
		copy(row[i+1:], row[i:])
		row[i] = Neighbor{To: to, E: ep}
		ng.adj[v] = row
	}
}

// recomputeComponents dissolves every identity component the delta touches,
// regroups the affected entities by shared references, and re-enumerates the
// legal configurations of only those groups. Untouched components are shared
// with the old graph (keeping their memoized marginals); component indices
// are renumbered on the new graph's copied nodes. Returns the entities whose
// identity marginals were recomputed.
func recomputeComponents(old, ng *Graph, d *refgraph.PGD, dl Delta, refToEnts [][]ID, setEnt map[refgraph.SetID]ID, newEnts []ID, opt BuildOptions) ([]ID, error) {
	dissolve := make(map[int32]bool)
	affected := make(map[ID]bool)
	for _, e := range newEnts {
		affected[e] = true
	}
	for _, sid := range dl.SetProbs {
		e, ok := setEnt[sid]
		if !ok {
			return nil, fmt.Errorf("entity: delta updates set %d with no entity", sid)
		}
		if int(e) < len(old.nodes) {
			dissolve[old.nodes[e].Comp] = true
		}
	}
	// A new entity drags every old entity it shares a reference with — and
	// transitively that entity's whole component — into the recompute set.
	for _, e := range newEnts {
		for _, r := range ng.nodes[e].Refs {
			for _, o := range refToEnts[r] {
				if o != e && int(o) < len(old.nodes) {
					dissolve[old.nodes[o].Comp] = true
				}
			}
		}
	}
	for ci := range dissolve {
		for _, m := range old.comps[ci].Members {
			affected[m] = true
		}
	}

	// Keep every untouched component, sharing the pointer (and its memo).
	ng.comps = make([]*Component, 0, len(old.comps)+len(newEnts))
	for ci, c := range old.comps {
		if !dissolve[int32(ci)] {
			ng.comps = append(ng.comps, c)
		}
	}
	for ci, c := range ng.comps {
		for pos, m := range c.Members {
			ng.nodes[m].Comp = int32(ci)
			ng.nodes[m].CompPos = uint8(pos)
		}
	}
	if len(affected) == 0 {
		return nil, nil
	}

	// Regroup the affected entities by shared references (union-find).
	members := make([]ID, 0, len(affected))
	for e := range affected {
		members = append(members, e)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	idx := make(map[ID]int32, len(members))
	for i, e := range members {
		idx[e] = int32(i)
	}
	parent := make([]int32, len(members))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byRef := make(map[refgraph.RefID]int32)
	for i, e := range members {
		for _, r := range ng.nodes[e].Refs {
			if j, ok := byRef[r]; ok {
				ra, rb := find(int32(i)), find(j)
				if ra != rb {
					parent[ra] = rb
				}
			} else {
				byRef[r] = int32(i)
			}
		}
	}
	groups := make(map[int32][]ID)
	for i, e := range members {
		r := find(int32(i))
		groups[r] = append(groups[r], e)
	}
	roots := make([]int32, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })

	var recomputed []ID
	for _, root := range roots {
		ms := groups[root]
		if len(ms) > 64 {
			return nil, fmt.Errorf("entity: identity component with %d entities exceeds the 64-entity limit", len(ms))
		}
		ci := int32(len(ng.comps))
		comp := &Component{Members: ms}
		for pos, m := range ms {
			ng.nodes[m].Comp = ci
			ng.nodes[m].CompPos = uint8(pos)
		}
		if len(ms) == 1 {
			comp.Configs = []Config{{Mask: 1, P: 1}}
		} else {
			cfgs, err := ng.enumerateComponent(d, ms, opt)
			if err != nil {
				return nil, err
			}
			comp.Configs = cfgs
		}
		ng.comps = append(ng.comps, comp)
		for _, m := range ms {
			nd := &ng.nodes[m]
			nd.Exist = comp.MarginalAll(uint64(1) << nd.CompPos)
			recomputed = append(recomputed, m)
		}
	}
	return recomputed, nil
}
