package entity

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

// applyRandomDelta mutates d in place and returns the delta describing it.
func applyRandomDelta(t *testing.T, rng *rand.Rand, d *refgraph.PGD) Delta {
	t.Helper()
	var dl Delta
	for i := 0; i < 4; i++ {
		switch rng.Intn(4) {
		case 0:
			id := d.AddReference(prob.Point(prob.LabelID(rng.Intn(d.Alphabet().Len()))))
			dl.NewRefs = append(dl.NewRefs, id)
		case 1:
			a := refgraph.RefID(rng.Intn(d.NumRefs()))
			b := refgraph.RefID(rng.Intn(d.NumRefs()))
			if a == b {
				continue
			}
			if err := d.AddEdge(a, b, refgraph.EdgeDist{P: 0.3 + 0.7*rng.Float64()}); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
			dl.Edges = append(dl.Edges, refgraph.MakeEdgeKey(a, b))
		case 2:
			if d.NumSets() == 0 {
				continue
			}
			sid := refgraph.SetID(rng.Intn(d.NumSets()))
			if err := d.SetSetProb(sid, rng.Float64()); err != nil {
				t.Fatalf("SetSetProb: %v", err)
			}
			dl.SetProbs = append(dl.SetProbs, sid)
		default:
			a := rng.Intn(d.NumRefs() - 1)
			b := a + 1 + rng.Intn(2)
			if b >= d.NumRefs() {
				continue
			}
			members := []refgraph.RefID{refgraph.RefID(a), refgraph.RefID(b)}
			if _, ok := d.FindSet(members); ok {
				continue
			}
			sid, err := d.AddReferenceSet(members, 0.3+0.5*rng.Float64())
			if err != nil {
				t.Fatalf("AddReferenceSet: %v", err)
			}
			dl.NewSets = append(dl.NewSets, sid)
		}
	}
	return dl
}

// nodeKey identifies an entity across differently-ordered graphs by its
// reference set.
func nodeKey(g *Graph, v ID) string { return fmt.Sprintf("%v", g.Refs(v)) }

// TestApplyDeltaMatchesFullRebuild applies random mutation chains through
// ApplyDelta and checks every probability-bearing quantity — labels,
// existence marginals, merged edge distributions, and pairwise identity
// marginals — against a from-scratch Build of the mutated PGD, entity ids
// canonicalized by reference set.
func TestApplyDeltaMatchesFullRebuild(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, err := gen.Synthetic(gen.SynthOptions{
			Refs: 20, EdgeFactor: 2, Labels: 3, UncertainFrac: 0.5,
			Groups: 2, GroupSize: 3, PairsPerGroup: 2, Seed: seed,
		})
		if err != nil {
			t.Fatalf("Synthetic: %v", err)
		}
		g, err := Build(d, BuildOptions{})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for step := 0; step < 3; step++ {
			dl := applyRandomDelta(t, rng, d)
			ng, dirty, err := ApplyDelta(g, d, dl, BuildOptions{})
			if err != nil {
				t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
			}
			want, err := Build(d, BuildOptions{})
			if err != nil {
				t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
			}
			compareGraphs(t, fmt.Sprintf("seed %d step %d", seed, step), ng, want)
			if !dl.Empty() && len(dirty) == 0 {
				t.Errorf("seed %d step %d: non-empty delta but no dirty entities", seed, step)
			}
			g = ng
		}
	}
}

func compareGraphs(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("%s: %d nodes, want %d", label, got.NumNodes(), want.NumNodes())
	}
	// Map want's entities by reference set.
	wantBy := make(map[string]ID, want.NumNodes())
	for v := 0; v < want.NumNodes(); v++ {
		wantBy[nodeKey(want, ID(v))] = ID(v)
	}
	const tol = 1e-12
	for v := 0; v < got.NumNodes(); v++ {
		gv := ID(v)
		wv, ok := wantBy[nodeKey(got, gv)]
		if !ok {
			t.Fatalf("%s: entity %v missing from rebuild", label, got.Refs(gv))
		}
		if diff := got.Exist(gv) - want.Exist(wv); diff > tol || diff < -tol {
			t.Errorf("%s: Exist(%v) = %v, want %v", label, got.Refs(gv), got.Exist(gv), want.Exist(wv))
		}
		for _, l := range got.Labels(gv) {
			if diff := got.PrLabel(gv, l) - want.PrLabel(wv, l); diff > tol || diff < -tol {
				t.Errorf("%s: PrLabel(%v,%d) mismatch", label, got.Refs(gv), l)
			}
		}
		// Adjacency: same neighbor sets with same merged distributions.
		gn := got.Neighbors(gv)
		wn := want.Neighbors(wv)
		if len(gn) != len(wn) {
			t.Errorf("%s: %v has %d neighbors, want %d", label, got.Refs(gv), len(gn), len(wn))
			continue
		}
		wnBy := make(map[string]*EdgeProb, len(wn))
		for _, nb := range wn {
			wnBy[nodeKey(want, nb.To)] = nb.E
		}
		for _, nb := range gn {
			we, ok := wnBy[nodeKey(got, nb.To)]
			if !ok {
				t.Errorf("%s: edge %v–%v missing from rebuild", label, got.Refs(gv), got.Refs(nb.To))
				continue
			}
			if diff := nb.E.Base() - we.Base(); diff > tol || diff < -tol {
				t.Errorf("%s: edge %v–%v base %v, want %v", label, got.Refs(gv), got.Refs(nb.To), nb.E.Base(), we.Base())
			}
			if nb.E.Conditional() != we.Conditional() {
				t.Errorf("%s: edge %v–%v conditional mismatch", label, got.Refs(gv), got.Refs(nb.To))
			}
		}
		// Pairwise identity marginals (exercises component configs + memo).
		for u := v + 1; u < got.NumNodes(); u++ {
			gu := ID(u)
			wu := wantBy[nodeKey(got, gu)]
			if diff := got.PrnPair(gv, gu) - want.PrnPair(wv, wu); diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s: PrnPair(%v,%v) = %v, want %v",
					label, got.Refs(gv), got.Refs(gu), got.PrnPair(gv, gu), want.PrnPair(wv, wu))
			}
		}
	}
}
