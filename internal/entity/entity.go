// Package entity implements the Probabilistic Entity Graph (PEG) of
// Definition 2 and the derived certain graph GU of Section 4 that all query
// algorithms operate on.
//
// Build transforms a reference-level PGD into entity-level nodes (one per
// reference set, singletons included), merging label distributions and edge
// existence probabilities with the PGD's merge functions, and precomputing
// the identity components of the Markov network together with their legal
// configuration distributions (the offline "component probabilities" step of
// Section 5.1).
//
// Match probabilities decompose as Pr(M) = Prn(M) · Prle(M) (Eq. 11): Prn is
// the identity-existence marginal computed per connected component, Prle the
// decomposable product of node label and edge existence probabilities.
package entity

import (
	"fmt"
	"sort"

	"repro/internal/pgm"
	"repro/internal/prob"
	"repro/internal/refgraph"
)

// ID identifies an entity node in the PEG / GU.
type ID int32

// Semantics selects how identity components are scored. See DESIGN.md
// ("Semantics note"): the paper's Definition 2 factors cannot reproduce its
// own Section 2 example, so both readings are implemented.
type Semantics uint8

const (
	// SemanticsExample (default) weights a legal component configuration by
	// ∏ p_s over existing non-singleton sets times ∏ (1−p_s) over absent
	// ones, normalized per component. This reproduces the Section 2 worked
	// example (Pr(merged)=0.8, Pr(unmerged)=0.2).
	SemanticsExample Semantics = iota
	// SemanticsFactor is the literal Definition 2 node-existence factor
	// product: each reference contributes fN over its containing sets,
	// valued p_s(T) of the unique existing set. Singleton priors default to
	// 1 and may be set via PGD.SetSingletonPrior.
	SemanticsFactor
)

// EdgeProb is the merged existence distribution of an entity edge: the edge
// existence factor of Eq. 3, or its label-conditioned form of Eq. 9 when the
// underlying reference edges carry CPTs.
type EdgeProb struct {
	base   float64
	cpt    []float64 // nil when unconditional; else |Σ|² row-major
	max    float64
	stride int32
}

// Prob returns the existence probability given the endpoint labels.
// For unconditional edges the labels are ignored.
func (e *EdgeProb) Prob(l1, l2 prob.LabelID) float64 {
	if e.cpt == nil {
		return e.base
	}
	return e.cpt[l1*prob.LabelID(e.stride)+l2]
}

// Max returns the largest existence probability over all label pairs. It is
// the bound used by GU edge inclusion and by the Section 5.3 variants of
// ppu/fpu.
func (e *EdgeProb) Max() float64 { return e.max }

// Conditional reports whether the edge probability depends on endpoint
// labels (Section 5.3 correlations).
func (e *EdgeProb) Conditional() bool { return e.cpt != nil }

// Base returns the unconditional (base) probability.
func (e *EdgeProb) Base() float64 { return e.base }

// Neighbor is one adjacency entry of GU.
type Neighbor struct {
	To ID
	E  *EdgeProb
}

// Node is one entity node: a reference set with merged label distribution.
type Node struct {
	Refs    []refgraph.RefID // sorted member references
	Label   prob.Dist        // merged label distribution (node label factor)
	Set     refgraph.SetID   // originating PGD set id; -1 for singletons
	Comp    int32            // identity component index
	CompPos uint8            // bit position within the component
	Exist   float64          // marginal existence probability Pr(v.n = T)
}

// Config is one legal configuration of an identity component: Mask has bit
// i set iff the component's i-th member entity exists.
type Config struct {
	Mask uint64
	P    float64
}

// Graph is the probabilistic entity graph (both the PEG and its certain
// skeleton GU). It is immutable after Build, so all read methods are safe
// for concurrent use; marginal memoization is internally synchronized.
type Graph struct {
	alpha *prob.Alphabet
	nodes []Node
	adj   [][]Neighbor
	comps []*Component
	sem   Semantics
}

// BuildOptions configures Build.
type BuildOptions struct {
	// Semantics selects the identity scoring; default SemanticsExample.
	Semantics Semantics
	// StateBudget caps per-component exact enumeration (0 = pgm default).
	StateBudget int
}

// Build constructs the PEG from a PGD. The PGD is validated first.
func Build(d *refgraph.PGD, opt BuildOptions) (*Graph, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	merge := d.Merge()
	nRefs := d.NumRefs()
	nSets := d.NumSets()
	nLabels := d.Alphabet().Len()

	g := &Graph{
		alpha: d.Alphabet(),
		nodes: make([]Node, 0, nRefs+nSets),
		sem:   opt.Semantics,
	}

	// Entities: singleton per reference first, then one per explicit set.
	refToEnts := make([][]ID, nRefs)
	for r := 0; r < nRefs; r++ {
		g.nodes = append(g.nodes, Node{
			Refs:  []refgraph.RefID{refgraph.RefID(r)},
			Label: d.RefLabel(refgraph.RefID(r)),
			Set:   -1,
		})
		refToEnts[r] = append(refToEnts[r], ID(r))
	}
	for i := 0; i < nSets; i++ {
		s := d.Set(refgraph.SetID(i))
		dists := make([]prob.Dist, len(s.Members))
		for j, m := range s.Members {
			dists[j] = d.RefLabel(m)
		}
		id := ID(len(g.nodes))
		g.nodes = append(g.nodes, Node{
			Refs:  s.Members,
			Label: merge.Labels(dists),
			Set:   refgraph.SetID(i),
		})
		for _, m := range s.Members {
			refToEnts[m] = append(refToEnts[m], id)
		}
	}

	if err := g.buildEdges(d, refToEnts, merge, nLabels); err != nil {
		return nil, err
	}
	if err := g.buildComponents(d, refToEnts, opt); err != nil {
		return nil, err
	}
	return g, nil
}

// edgeAccum collects reference-edge contributions for one entity pair.
type edgeAccum struct {
	dists  []refgraph.EdgeDist
	anyCPT bool
}

func (g *Graph) buildEdges(d *refgraph.PGD, refToEnts [][]ID, merge prob.MergeFuncs, nLabels int) error {
	type pair struct{ a, b ID }
	// Iterate reference edges in canonical key order, not map order: when
	// several reference edges contribute to one entity pair, the merge
	// function sees them in a fixed sequence, so two PGDs holding the same
	// edges — however they were assembled — build bitwise-identical merged
	// probabilities. The shard tier's byte-identical scatter-gather merge
	// depends on this.
	type keyedEdge struct {
		k refgraph.EdgeKey
		e refgraph.EdgeDist
	}
	edges := make([]keyedEdge, 0, d.NumEdges())
	d.Edges(func(k refgraph.EdgeKey, e refgraph.EdgeDist) bool {
		edges = append(edges, keyedEdge{k, e})
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].k.A != edges[j].k.A {
			return edges[i].k.A < edges[j].k.A
		}
		return edges[i].k.B < edges[j].k.B
	})
	acc := make(map[pair]*edgeAccum)
	for _, ke := range edges {
		k, e := ke.k, ke.e
		for _, ea := range refToEnts[k.A] {
			for _, eb := range refToEnts[k.B] {
				if ea == eb {
					continue // would be a self loop on a merged entity
				}
				if g.refsOverlapSlices(g.nodes[ea].Refs, g.nodes[eb].Refs) {
					continue // the two entities can never coexist
				}
				p := pair{ea, eb}
				if p.a > p.b {
					p.a, p.b = p.b, p.a
				}
				a := acc[p]
				if a == nil {
					a = &edgeAccum{}
					acc[p] = a
				}
				a.dists = append(a.dists, e)
				if e.CPT != nil {
					a.anyCPT = true
				}
			}
		}
	}

	g.adj = make([][]Neighbor, len(g.nodes))
	ps := make([]float64, 0, 8)
	for p, a := range acc {
		ep := &EdgeProb{stride: int32(nLabels)}
		ps = ps[:0]
		for _, ed := range a.dists {
			ps = append(ps, ed.P)
		}
		ep.base = merge.Edges(ps)
		if a.anyCPT {
			ep.cpt = make([]float64, nLabels*nLabels)
			cell := make([]float64, len(a.dists))
			for l1 := 0; l1 < nLabels; l1++ {
				for l2 := 0; l2 < nLabels; l2++ {
					for i, ed := range a.dists {
						cell[i] = ed.Prob(prob.LabelID(l1), prob.LabelID(l2), nLabels)
					}
					ep.cpt[l1*nLabels+l2] = merge.Edges(cell)
				}
			}
		}
		ep.max = ep.base
		for _, v := range ep.cpt {
			if v > ep.max {
				ep.max = v
			}
		}
		if ep.max <= 0 {
			continue // Pr((s1,s2).e = T) = 0: not a GU edge
		}
		g.adj[p.a] = append(g.adj[p.a], Neighbor{To: p.b, E: ep})
		g.adj[p.b] = append(g.adj[p.b], Neighbor{To: p.a, E: ep})
	}
	for _, nbs := range g.adj {
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].To < nbs[j].To })
	}
	return nil
}

func (g *Graph) buildComponents(d *refgraph.PGD, refToEnts [][]ID, opt BuildOptions) error {
	n := len(g.nodes)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, ents := range refToEnts {
		for i := 1; i < len(ents); i++ {
			ra, rb := find(int32(ents[0])), find(int32(ents[i]))
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	groups := make(map[int32][]ID)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		groups[r] = append(groups[r], ID(i))
	}
	roots := make([]int32, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })

	g.comps = make([]*Component, 0, len(groups))
	for _, root := range roots {
		members := groups[root]
		ci := int32(len(g.comps))
		if len(members) > 64 {
			return fmt.Errorf("entity: identity component with %d entities exceeds the 64-entity limit", len(members))
		}
		comp := &Component{Members: members}
		for pos, m := range members {
			g.nodes[m].Comp = ci
			g.nodes[m].CompPos = uint8(pos)
		}
		if len(members) == 1 {
			// Trivial component: the singleton of a reference that belongs
			// to no explicit set always exists.
			comp.Configs = []Config{{Mask: 1, P: 1}}
		} else {
			cfgs, err := g.enumerateComponent(d, members, opt)
			if err != nil {
				return err
			}
			comp.Configs = cfgs
		}
		g.comps = append(g.comps, comp)
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		nd.Exist = g.comps[nd.Comp].MarginalAll(uint64(1) << nd.CompPos)
	}
	return nil
}

// enumerateComponent scores the legal configurations of one identity
// component using the PGM engine, under the configured semantics.
func (g *Graph) enumerateComponent(d *refgraph.PGD, members []ID, opt BuildOptions) ([]Config, error) {
	cards := make([]int, len(members))
	for i := range cards {
		cards[i] = 2
	}
	model, err := pgm.NewModel(cards)
	if err != nil {
		return nil, err
	}
	pos := make(map[ID]int, len(members))
	for i, m := range members {
		pos[m] = i
	}

	// Collect the references appearing in the component and, per reference,
	// the member variables of the entities containing it.
	refVars := make(map[refgraph.RefID][]pgm.Var)
	for _, m := range members {
		for _, r := range g.nodes[m].Refs {
			refVars[r] = append(refVars[r], pgm.Var(pos[m]))
		}
	}
	refIDs := make([]refgraph.RefID, 0, len(refVars))
	for r := range refVars {
		refIDs = append(refIDs, r)
	}
	sort.Slice(refIDs, func(i, j int) bool { return refIDs[i] < refIDs[j] })

	switch g.sem {
	case SemanticsExample:
		// Legality factor per reference: exactly one containing set exists.
		for _, r := range refIDs {
			vars := refVars[r]
			if err := model.AddFactor(pgm.Factor{Vars: vars, Fn: exactlyOne}); err != nil {
				return nil, err
			}
		}
		// Prior factor per non-singleton member: p if exists, 1-p if not.
		for _, m := range members {
			if len(g.nodes[m].Refs) < 2 {
				continue
			}
			p := g.setProb(d, m)
			v := pgm.Var(pos[m])
			if err := model.AddFactor(pgm.Factor{Vars: []pgm.Var{v}, Fn: bernoulli(p)}); err != nil {
				return nil, err
			}
		}
	case SemanticsFactor:
		// Literal Definition 2: per reference r, fN over S_r values p_s(T)
		// of the unique existing set, 0 unless exactly one exists.
		for _, r := range refIDs {
			vars := refVars[r]
			probs := make([]float64, len(vars))
			for i, v := range vars {
				m := members[v]
				if len(g.nodes[m].Refs) < 2 {
					probs[i] = d.SingletonPrior(g.nodes[m].Refs[0])
				} else {
					probs[i] = g.setProb(d, m)
				}
			}
			fn := func(probs []float64) func([]int) float64 {
				return func(vals []int) float64 {
					chosen := -1
					for i, v := range vals {
						if v == 1 {
							if chosen >= 0 {
								return 0
							}
							chosen = i
						}
					}
					if chosen < 0 {
						return 0
					}
					return probs[chosen]
				}
			}(probs)
			if err := model.AddFactor(pgm.Factor{Vars: vars, Fn: fn}); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("entity: unknown semantics %d", g.sem)
	}

	vars := make([]pgm.Var, len(members))
	for i := range vars {
		vars[i] = pgm.Var(i)
	}
	dist, err := model.ComponentDist(vars, opt.StateBudget)
	if err != nil {
		return nil, fmt.Errorf("entity: component %v: %w", members, err)
	}
	cfgs := make([]Config, len(dist))
	for i, a := range dist {
		var mask uint64
		for j, v := range a.Vals {
			if v == 1 {
				mask |= uint64(1) << uint(j)
			}
		}
		cfgs[i] = Config{Mask: mask, P: a.P}
	}
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].Mask < cfgs[j].Mask })
	return cfgs, nil
}

// setProb returns the PGD merge probability of the non-singleton entity m
// via the set id recorded at node creation (stable under incremental
// maintenance, where entity ids no longer follow the singletons-then-sets
// layout of Build).
func (g *Graph) setProb(d *refgraph.PGD, m ID) float64 {
	return d.Set(g.nodes[m].Set).P
}

func exactlyOne(vals []int) float64 {
	n := 0
	for _, v := range vals {
		n += v
	}
	if n == 1 {
		return 1
	}
	return 0
}

func bernoulli(p float64) func([]int) float64 {
	return func(vals []int) float64 {
		if vals[0] == 1 {
			return p
		}
		return 1 - p
	}
}

func (g *Graph) refsOverlapSlices(a, b []refgraph.RefID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}
