package entity

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/prob"
	"repro/internal/refgraph"
)

// Component is one connected component of the identity Markov network: a
// maximal group of entities linked by shared references. Its Configs are the
// legal configurations with their normalized probabilities (Eq. 7).
type Component struct {
	Members []ID // sorted entity ids; bit i of a Config mask = Members[i]
	Configs []Config

	// memo caches subset marginals copy-on-write: readers load the map
	// lock-free (the join hot path hits it once per partial extension from
	// every worker), writers take mu, copy, insert, and republish. The set
	// of distinct masks per component is tiny — bounded by the query-node
	// subsets that land in the component — so the copies are cheap and the
	// steady state is all hits with zero contention.
	mu   sync.Mutex
	memo atomic.Pointer[map[uint64]float64]
}

// MarginalAll returns Pr(all entities in mask exist): the sum of the
// probabilities of configurations whose mask is a superset of mask. Results
// are memoized; the method is safe (and in steady state contention-free)
// for concurrent use.
func (c *Component) MarginalAll(mask uint64) float64 {
	if mask == 0 {
		return 1
	}
	if m := c.memo.Load(); m != nil {
		if p, ok := (*m)[mask]; ok {
			return p
		}
	}
	p := 0.0
	for _, cfg := range c.Configs {
		if cfg.Mask&mask == mask {
			p += cfg.P
		}
	}
	c.mu.Lock()
	cur := c.memo.Load()
	var next map[uint64]float64
	if cur == nil {
		next = map[uint64]float64{mask: p}
	} else if _, ok := (*cur)[mask]; ok {
		c.mu.Unlock()
		return p
	} else {
		next = make(map[uint64]float64, len(*cur)+1)
		for k, v := range *cur {
			next[k] = v
		}
		next[mask] = p
	}
	c.memo.Store(&next)
	c.mu.Unlock()
	return p
}

// Alphabet returns the label alphabet of the graph.
func (g *Graph) Alphabet() *prob.Alphabet { return g.alpha }

// NumLabels returns |Σ|.
func (g *Graph) NumLabels() int { return g.alpha.Len() }

// NumNodes returns the number of entity nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of (undirected) GU edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nbs := range g.adj {
		n += len(nbs)
	}
	return n / 2
}

// Node returns the entity node v.
func (g *Graph) Node(v ID) *Node { return &g.nodes[v] }

// Refs returns the member references of entity v.
func (g *Graph) Refs(v ID) []refgraph.RefID { return g.nodes[v].Refs }

// Labels returns L(v): the labels of v with non-zero probability.
func (g *Graph) Labels(v ID) []prob.LabelID { return g.nodes[v].Label.Support() }

// PrLabel returns Pr(v.l = l), the node label factor of Eq. 2.
func (g *Graph) PrLabel(v ID, l prob.LabelID) float64 { return g.nodes[v].Label.P(l) }

// HasLabel reports whether l ∈ L(v).
func (g *Graph) HasLabel(v ID, l prob.LabelID) bool { return g.nodes[v].Label.P(l) > 0 }

// Exist returns the marginal existence probability Pr(v.n = T).
func (g *Graph) Exist(v ID) float64 { return g.nodes[v].Exist }

// Neighbors returns the adjacency list of v, sorted by neighbor id. The
// returned slice must not be modified.
func (g *Graph) Neighbors(v ID) []Neighbor { return g.adj[v] }

// Degree returns the number of GU neighbors of v.
func (g *Graph) Degree(v ID) int { return len(g.adj[v]) }

// EdgeBetween returns the edge between a and b, if any.
func (g *Graph) EdgeBetween(a, b ID) (*EdgeProb, bool) {
	nbs := g.adj[a]
	i := sort.Search(len(nbs), func(i int) bool { return nbs[i].To >= b })
	if i < len(nbs) && nbs[i].To == b {
		return nbs[i].E, true
	}
	return nil, false
}

// RefsOverlap reports whether entities a and b share a reference, in which
// case they can never coexist in a legal possible world.
func (g *Graph) RefsOverlap(a, b ID) bool {
	return g.refsOverlapSlices(g.nodes[a].Refs, g.nodes[b].Refs)
}

// NumComponents returns the number of identity components.
func (g *Graph) NumComponents() int { return len(g.comps) }

// ComponentOf returns the identity component containing v.
func (g *Graph) ComponentOf(v ID) *Component { return g.comps[g.nodes[v].Comp] }

// Component returns the i-th identity component.
func (g *Graph) Component(i int) *Component { return g.comps[i] }

// Semantics returns the identity semantics the graph was built with.
func (g *Graph) Semantics() Semantics { return g.sem }

// Prn computes the identity-existence marginal Pr(V.n = T) for a set of
// entity nodes (Eq. 12): nodes are grouped by component and the per-component
// subset marginals are multiplied. Duplicate ids are harmless. Returns 0 when
// two nodes share a reference (no legal world contains both).
func (g *Graph) Prn(nodes []ID) float64 {
	switch len(nodes) {
	case 0:
		return 1
	case 1:
		return g.nodes[nodes[0]].Exist
	}
	// Small-n path: accumulate per-component masks without allocation for
	// the common case of short paths.
	type cm struct {
		comp int32
		mask uint64
	}
	var buf [8]cm
	masks := buf[:0]
	for _, v := range nodes {
		nd := &g.nodes[v]
		bit := uint64(1) << nd.CompPos
		found := false
		for i := range masks {
			if masks[i].comp == nd.Comp {
				masks[i].mask |= bit
				found = true
				break
			}
		}
		if !found {
			masks = append(masks, cm{comp: nd.Comp, mask: bit})
		}
	}
	p := 1.0
	for _, m := range masks {
		p *= g.comps[m.comp].MarginalAll(m.mask)
		if p == 0 {
			return 0
		}
	}
	return p
}

// PrnPair is Prn for exactly two nodes, avoiding slice allocation on the
// hottest candidate-pruning path.
func (g *Graph) PrnPair(a, b ID) float64 {
	na, nb := &g.nodes[a], &g.nodes[b]
	if na.Comp != nb.Comp {
		return na.Exist * nb.Exist
	}
	mask := uint64(1)<<na.CompPos | uint64(1)<<nb.CompPos
	return g.comps[na.Comp].MarginalAll(mask)
}

// Assignment is a labeled subgraph over GU: nodes with assigned labels plus
// edges, as used for Prle (Eq. 13).
type Assignment struct {
	Nodes  []ID
	Labels []prob.LabelID // parallel to Nodes
	Edges  [][2]int       // index pairs into Nodes
}

// Prle computes the label/edge probability component of Eq. 13 for an
// assignment: the product of node label probabilities and edge existence
// probabilities (conditional on the assigned labels for CPT edges).
// Returns 0 when a required edge is absent from GU.
func (g *Graph) Prle(a Assignment) float64 {
	p := 1.0
	for i, v := range a.Nodes {
		p *= g.PrLabel(v, a.Labels[i])
		if p == 0 {
			return 0
		}
	}
	for _, e := range a.Edges {
		u, v := a.Nodes[e[0]], a.Nodes[e[1]]
		ep, ok := g.EdgeBetween(u, v)
		if !ok {
			return 0
		}
		p *= ep.Prob(a.Labels[e[0]], a.Labels[e[1]])
		if p == 0 {
			return 0
		}
	}
	return p
}

// PrMatch is Pr(M) = Prn(M) · Prle(M) (Eq. 11) for an assignment.
func (g *Graph) PrMatch(a Assignment) float64 {
	le := g.Prle(a)
	if le == 0 {
		return 0
	}
	return le * g.Prn(a.Nodes)
}

// NodesRefsDisjoint reports whether all nodes have pairwise disjoint
// reference sets (the legality requirement of Definition 4).
func (g *Graph) NodesRefsDisjoint(nodes []ID) bool {
	seen := make(map[refgraph.RefID]struct{}, len(nodes)*2)
	for _, v := range nodes {
		for _, r := range g.nodes[v].Refs {
			if _, dup := seen[r]; dup {
				return false
			}
			seen[r] = struct{}{}
		}
	}
	return true
}
