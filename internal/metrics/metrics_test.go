package metrics

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("test_total", "a counter")
	v := NewCounterVec("test_by_kind_total", "a labeled counter", "kind")
	r.MustRegister(c, v)
	c.Inc()
	c.Add(2)
	v.WithLabelValues("a").Inc()
	v.WithLabelValues("b").Add(5)
	out := render(r)
	for _, want := range []string{
		"# TYPE test_total counter",
		"test_total 3",
		`test_by_kind_total{kind="a"} 1`,
		`test_by_kind_total{kind="b"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("dup_total", ""))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.MustRegister(NewCounter("dup_total", ""))
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(
		NewGaugeFunc("g", "a gauge", func() float64 { return 2.5 }),
		NewMultiGaugeFunc("mg", "a labeled gauge", "k", func(emit func(string, float64)) {
			emit("x", 1)
			emit("y", 0.25)
		}),
	)
	ig := NewInfoGauge("info", "identity", "id")
	ig.SetLabelValue("gen3#42")
	r.MustRegister(ig)
	out := render(r)
	for _, want := range []string{
		"g 2.5",
		`mg{k="x"} 1`,
		`mg{k="y"} 0.25`,
		`info{id="gen3#42"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramExposition checks the cumulative-bucket invariants of the
// text format: le buckets are non-decreasing, +Inf equals _count, and _sum
// is the sum of observations.
func TestHistogramExposition(t *testing.T) {
	h := NewHistogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.005} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	r := NewRegistry()
	r.MustRegister(h)
	out := render(r)
	wantBuckets := map[string]uint64{"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
	var prev uint64
	seen := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		seen++
		le := line[strings.Index(line, `le="`)+4:]
		le = le[:strings.Index(le, `"`)]
		var n uint64
		fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n)
		if n < prev {
			t.Errorf("bucket le=%s count %d < previous %d (not cumulative)", le, n, prev)
		}
		prev = n
		if want, ok := wantBuckets[le]; ok && n != want {
			t.Errorf("bucket le=%s = %d, want %d", le, n, want)
		}
	}
	if seen != 4 {
		t.Errorf("saw %d bucket lines, want 4", seen)
	}
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lat_seconds_sum ") {
			sum, _ = strconv.ParseFloat(strings.TrimPrefix(line, "lat_seconds_sum "), 64)
		}
	}
	if math.Abs(sum-5.56) > 1e-9 {
		t.Errorf("sum = %v, want 5.56", sum)
	}
	if !strings.Contains(out, "lat_seconds_count 5") {
		t.Errorf("missing count line:\n%s", out)
	}
}

func TestHistogramVecSharesHeader(t *testing.T) {
	v := NewHistogramVec("stage_seconds", "per-stage", "stage", ExpBuckets(0.001, 10, 3))
	v.WithLabelValue("join").Observe(0.5)
	v.WithLabelValue("reduce").Observe(0.002)
	r := NewRegistry()
	r.MustRegister(v)
	out := render(r)
	if n := strings.Count(out, "# TYPE stage_seconds histogram"); n != 1 {
		t.Errorf("TYPE header rendered %d times, want 1", n)
	}
	for _, want := range []string{
		`stage_seconds_bucket{stage="join",le="+Inf"} 1`,
		`stage_seconds_count{stage="reduce"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.0001, 4, 5)
	want := []float64{0.0001, 0.0004, 0.0016, 0.0064, 0.0256}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

// TestConcurrentObserveAndScrape hammers a histogram and a counter vec from
// many goroutines while scraping — the race detector is the assertion.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec("conc_seconds", "", "stage", ExpBuckets(0.001, 10, 4))
	c := NewCounterVec("conc_total", "", "outcome")
	r.MustRegister(h, c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stage := fmt.Sprintf("s%d", g%3)
			for i := 0; i < 500; i++ {
				h.WithLabelValue(stage).Observe(float64(i) / 1000)
				c.WithLabelValues("ok").Inc()
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		_ = render(r)
	}
	wg.Wait()
	if got := c.WithLabelValues("ok").Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	total := uint64(0)
	for _, s := range h.SortedLabelValues() {
		total += h.WithLabelValue(s).Count()
	}
	if total != 4000 {
		t.Errorf("histogram observations = %d, want 4000", total)
	}
}
