// Package metrics is a dependency-free Prometheus-text-exposition metric
// registry for the serving tier. It implements exactly the subset the server
// needs — monotonic counters, scrape-time gauges, and fixed-bucket latency
// histograms, optionally split by one label — with a lock-free observation
// hot path: counters are single atomic adds, and a histogram observation is
// one atomic bucket increment plus one CAS-loop float add for the sum, so
// instrumenting the match path costs nanoseconds, not microseconds.
//
// A Registry renders its collectors in registration order as Prometheus
// text format (version 0.0.4): one # HELP / # TYPE header per family, then
// the sample lines. Everything is safe for concurrent use; scraping never
// blocks observers.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Collector renders one metric family (HELP/TYPE header plus samples).
type Collector interface {
	// Name returns the family name (used to reject duplicate registration).
	Name() string
	// Collect writes the family in Prometheus text format.
	Collect(w io.Writer)
}

// Registry is an ordered set of collectors.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	names      map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// MustRegister adds collectors, panicking on a duplicate family name —
// registration happens once at construction time, so a duplicate is a
// programming error, not a runtime condition.
func (r *Registry) MustRegister(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		if r.names[c.Name()] {
			panic(fmt.Sprintf("metrics: duplicate family %q", c.Name()))
		}
		r.names[c.Name()] = true
		r.collectors = append(r.collectors, c)
	}
}

// Render writes every registered family in registration order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	for _, c := range cs {
		c.Collect(w)
	}
}

// header writes the # HELP / # TYPE preamble of one family.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// fmtValue renders a sample value the way Prometheus expects (integers
// without an exponent, +Inf spelled out).
func fmtValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help, labels string
	v                  atomic.Uint64
}

// NewCounter returns a counter family with a single unlabeled series.
// labels, when non-empty, is a pre-rendered label set like `{op="x"}`.
func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name implements Collector.
func (c *Counter) Name() string { return c.name }

// Collect implements Collector.
func (c *Counter) Collect(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.v.Load())
}

// CounterVec is a counter family split by one or more labels. Children are
// created up front (WithLabelValues) or lazily; observation on an existing
// child is a single atomic add.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	children   map[string]*Counter
	order      []string
}

// NewCounterVec returns a labeled counter family.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{name: name, help: help, labels: labels, children: make(map[string]*Counter)}
}

// WithLabelValues returns (creating if needed) the child counter for the
// label values, which must match the family's label names positionally.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; ok {
		return c
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	var lb strings.Builder
	lb.WriteByte('{')
	for i, l := range v.labels {
		if i > 0 {
			lb.WriteByte(',')
		}
		fmt.Fprintf(&lb, "%s=%q", l, values[i])
	}
	lb.WriteByte('}')
	c = &Counter{name: v.name, labels: lb.String()}
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

// Name implements Collector.
func (v *CounterVec) Name() string { return v.name }

// Collect implements Collector.
func (v *CounterVec) Collect(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.RLock()
	order := append([]string(nil), v.order...)
	children := make([]*Counter, len(order))
	for i, val := range order {
		children[i] = v.children[val]
	}
	v.mu.RUnlock()
	for _, c := range children {
		fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.v.Load())
	}
}

// CounterFunc is a counter family whose single series is read at scrape
// time — for exporting monotonic totals that already live elsewhere (a
// server atomic, a cache's hit tally) without double accounting.
type CounterFunc struct {
	name, help string
	fn         func() float64
}

// NewCounterFunc returns a scrape-time counter family.
func NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	return &CounterFunc{name: name, help: help, fn: fn}
}

// Name implements Collector.
func (c *CounterFunc) Name() string { return c.name }

// Collect implements Collector.
func (c *CounterFunc) Collect(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %s\n", c.name, fmtValue(c.fn()))
}

// GaugeFunc is a gauge evaluated at scrape time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc returns a gauge family whose single series is computed by fn
// on every scrape.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return &GaugeFunc{name: name, help: help, fn: fn}
}

// Name implements Collector.
func (g *GaugeFunc) Name() string { return g.name }

// Collect implements Collector.
func (g *GaugeFunc) Collect(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, fmtValue(g.fn()))
}

// MultiGaugeFunc is a labeled gauge family enumerated at scrape time: fn
// calls emit once per series. Emitting nothing emits an empty family (the
// header still renders, so scrapers see the family exists).
type MultiGaugeFunc struct {
	name, help, label string
	fn                func(emit func(labelValue string, v float64))
}

// NewMultiGaugeFunc returns a labeled scrape-time gauge family.
func NewMultiGaugeFunc(name, help, label string, fn func(emit func(string, float64))) *MultiGaugeFunc {
	return &MultiGaugeFunc{name: name, help: help, label: label, fn: fn}
}

// Name implements Collector.
func (g *MultiGaugeFunc) Name() string { return g.name }

// Collect implements Collector.
func (g *MultiGaugeFunc) Collect(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	g.fn(func(val string, v float64) {
		fmt.Fprintf(w, "%s{%s=%q} %s\n", g.name, g.label, val, fmtValue(v))
	})
}

// InfoGauge renders a constant-1 series carrying identity labels (the
// Prometheus "info metric" idiom, e.g. the served index generation id).
type InfoGauge struct {
	name, help, label string
	mu                sync.Mutex
	value             string
}

// NewInfoGauge returns an info gauge; SetLabelValue replaces the identity.
func NewInfoGauge(name, help, label string) *InfoGauge {
	return &InfoGauge{name: name, help: help, label: label}
}

// SetLabelValue replaces the identity label value.
func (g *InfoGauge) SetLabelValue(v string) {
	g.mu.Lock()
	g.value = v
	g.mu.Unlock()
}

// Name implements Collector.
func (g *InfoGauge) Name() string { return g.name }

// Collect implements Collector.
func (g *InfoGauge) Collect(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	g.mu.Lock()
	v := g.value
	g.mu.Unlock()
	fmt.Fprintf(w, "%s{%s=%q} 1\n", g.name, g.label, v)
}

// Histogram is a fixed-bucket histogram. Observation is lock-free: one
// atomic increment on the bucket plus a CAS-loop float add on the sum.
// Bucket counts are stored per bucket (not cumulatively); Collect
// accumulates them into the cumulative `le` form Prometheus expects, which
// keeps the hot path a single add.
type Histogram struct {
	name, help, labels string
	bounds             []float64 // upper bounds, ascending; +Inf implicit
	counts             []atomic.Uint64
	sumBits            atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram returns a histogram family with the given ascending upper
// bounds (the +Inf bucket is implicit).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard latency bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search over a dozen bounds is slower than the branch predictor
	// on a linear scan this short.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Name implements Collector.
func (h *Histogram) Name() string { return h.name }

// Collect implements Collector.
func (h *Histogram) Collect(w io.Writer) {
	header(w, h.name, h.help, "histogram")
	h.collectSamples(w)
}

// collectSamples writes the bucket/sum/count lines without the header (the
// vec form shares one header across children).
func (h *Histogram) collectSamples(w io.Writer) {
	sep := "{"
	if h.labels != "" {
		sep = strings.TrimSuffix(h.labels, "}") + ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", h.name, sep, fmtValue(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", h.name, sep, cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", h.name, h.labels, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, cum)
}

// HistogramVec is a histogram family split by one label (e.g. per-stage
// latency). Children share the bucket layout.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	mu                sync.RWMutex
	children          map[string]*Histogram
	order             []string
}

// NewHistogramVec returns a labeled histogram family.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		name: name, help: help, label: label, bounds: bounds,
		children: make(map[string]*Histogram),
	}
}

// WithLabelValue returns (creating if needed) the child for value. Callers
// on the hot path should hold on to the child: the lookup takes an RLock,
// the observation itself is lock-free.
func (v *HistogramVec) WithLabelValue(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[value]; ok {
		return h
	}
	h = NewHistogram(v.name, "", v.bounds)
	h.labels = fmt.Sprintf("{%s=%q}", v.label, value)
	v.children[value] = h
	v.order = append(v.order, value)
	return h
}

// Name implements Collector.
func (v *HistogramVec) Name() string { return v.name }

// Collect implements Collector.
func (v *HistogramVec) Collect(w io.Writer) {
	header(w, v.name, v.help, "histogram")
	v.mu.RLock()
	order := append([]string(nil), v.order...)
	children := make([]*Histogram, len(order))
	for i, val := range order {
		children[i] = v.children[val]
	}
	v.mu.RUnlock()
	for _, h := range children {
		h.collectSamples(w)
	}
}

// SortedLabelValues returns the vec's label values, sorted — test helper.
func (v *HistogramVec) SortedLabelValues() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := append([]string(nil), v.order...)
	sort.Strings(out)
	return out
}

// TextFamily is a pre-rendered family: a HELP/TYPE header plus sample
// lines already in Prometheus text format. It is how the router's
// /metrics/cluster federation re-exports families scraped from shard
// replicas through an ordinary Registry — the scraper parses each
// replica's page, injects shard/replica labels into the sample lines, and
// registers one TextFamily per merged family.
type TextFamily struct {
	name, help, typ string
	samples         []string
}

// NewTextFamily returns a pass-through family. typ defaults to "untyped";
// each sample must be a complete text-format line without the newline.
func NewTextFamily(name, help, typ string, samples []string) *TextFamily {
	if typ == "" {
		typ = "untyped"
	}
	if help == "" {
		help = "federated family"
	}
	return &TextFamily{name: name, help: help, typ: typ, samples: samples}
}

// Append adds more pre-rendered sample lines (e.g. the same family from
// another replica).
func (f *TextFamily) Append(samples ...string) { f.samples = append(f.samples, samples...) }

// Name implements Collector.
func (f *TextFamily) Name() string { return f.name }

// Collect implements Collector.
func (f *TextFamily) Collect(w io.Writer) {
	header(w, f.name, f.help, f.typ)
	for _, s := range f.samples {
		io.WriteString(w, s)
		io.WriteString(w, "\n")
	}
}
