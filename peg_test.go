package peg_test

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"

	peg "repro"
)

// TestPublicAPIMotivatingExample walks the full public workflow on the
// paper's Section 2 example: PGD → PEG → index → query → matches.
func TestPublicAPIMotivatingExample(t *testing.T) {
	alpha := peg.MustAlphabet("a", "r", "i")
	a, r, i := alpha.ID("a"), alpha.ID("r"), alpha.ID("i")

	d := peg.NewPGD(alpha)
	r1 := d.AddReference(peg.MustDist(peg.LabelProb{Label: r, P: 0.25}, peg.LabelProb{Label: i, P: 0.75}))
	r2 := d.AddReference(peg.Point(a))
	r3 := d.AddReference(peg.Point(r))
	r4 := d.AddReference(peg.Point(i))
	for _, e := range []struct {
		a, b peg.RefID
		p    float64
	}{{r1, r2, 0.9}, {r2, r3, 1.0}, {r2, r4, 0.5}} {
		if err := d.AddEdge(e.a, e.b, peg.EdgeDist{P: e.p}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddReferenceSet([]peg.RefID{r3, r4}, 0.8); err != nil {
		t.Fatal(err)
	}

	g, err := peg.BuildGraph(d)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	ix, err := peg.BuildIndex(context.Background(), g, peg.IndexOptions{
		MaxLen: 2, Beta: 0.02, Gamma: 0.1, Dir: filepath.Join(t.TempDir(), "ix"),
	})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	defer ix.Close()

	q, err := peg.ParseQuery(`
node q1 r
node q2 a
node q3 i
edge q1 q2
edge q2 q3
`, alpha)
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}

	res, err := peg.Match(context.Background(), ix, q, peg.MatchOptions{Alpha: 0.2})
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %+v, want exactly the merged-entity path", res.Matches)
	}
	m := res.Matches[0]
	if math.Abs(m.Pr()-0.2025) > 1e-9 {
		t.Errorf("Pr = %v, want 0.2025", m.Pr())
	}
	// The first query node maps to the merged entity (id 4 = after the 4
	// singletons).
	if m.Mapping[0] != peg.EntityID(4) {
		t.Errorf("mapping = %v", m.Mapping)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	alpha := peg.MustAlphabet("x", "y")
	d := peg.NewPGD(alpha)
	a := d.AddReference(peg.Point(alpha.ID("x")))
	b := d.AddReference(peg.Point(alpha.ID("y")))
	if err := d.AddEdge(a, b, peg.EdgeDist{P: 0.7}); err != nil {
		t.Fatal(err)
	}

	// PGD snapshot round trip.
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := peg.LoadPGD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := peg.BuildGraph(d2)
	if err != nil {
		t.Fatal(err)
	}

	// Index build + reopen.
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := peg.BuildIndex(context.Background(), g, peg.IndexOptions{
		MaxLen: 1, Beta: 0.1, Gamma: 0.1, Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := peg.OpenIndex(dir, g)
	if err != nil {
		t.Fatalf("OpenIndex: %v", err)
	}
	defer ix2.Close()

	q := peg.NewQuery()
	n1 := q.AddNode(alpha.ID("x"))
	n2 := q.AddNode(alpha.ID("y"))
	if err := q.AddEdge(n1, n2); err != nil {
		t.Fatal(err)
	}
	res, err := peg.Match(context.Background(), ix2, q, peg.MatchOptions{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || math.Abs(res.Matches[0].Pr()-0.7) > 1e-9 {
		t.Fatalf("matches after reopen = %+v", res.Matches)
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	// The three strategies must be distinct, printable values.
	seen := map[string]bool{}
	for _, s := range []peg.Strategy{peg.StrategyOptimized, peg.StrategyRandomDecomp, peg.StrategyNoSSReduction} {
		if seen[s.String()] {
			t.Errorf("duplicate strategy name %q", s)
		}
		seen[s.String()] = true
	}
}
